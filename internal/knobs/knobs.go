// Package knobs models dynamic knobs: configuration parameters with value
// ranges (Sec. 2, "Parameter Identification"), the enumeration of setting
// combinations swept during calibration (Sec. 2.2), and the runtime
// registry of control variables whose recorded values the PowerDial
// control system writes into the running application (Sec. 2.1, "Dynamic
// Knob Insertion").
package knobs

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec describes one configuration parameter being transformed into a
// dynamic knob: its name, the ordered list of values the user asked
// PowerDial to explore, and the default value (the setting that delivers
// the highest QoS — for the paper's benchmarks, the application default).
type Spec struct {
	Name    string
	Values  []int64
	Default int64
}

// Validate checks that the spec has values and that the default is one of
// them.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("knobs: spec with empty name")
	}
	if len(s.Values) == 0 {
		return fmt.Errorf("knobs: spec %q has no values", s.Name)
	}
	for _, v := range s.Values {
		if v == s.Default {
			return nil
		}
	}
	return fmt.Errorf("knobs: spec %q default %d not among its values", s.Name, s.Default)
}

// Range returns the inclusive arithmetic sequence lo, lo+step, ..., hi.
// It panics on a non-positive step or lo > hi; these are programmer errors
// in knob declarations.
func Range(lo, hi, step int64) []int64 {
	if step <= 0 || lo > hi {
		panic(fmt.Sprintf("knobs: invalid range [%d,%d] step %d", lo, hi, step))
	}
	vals := make([]int64, 0, (hi-lo)/step+1)
	for v := lo; v <= hi; v += step {
		vals = append(vals, v)
	}
	return vals
}

// Setting is one combination of knob values, positionally aligned with a
// []Spec.
type Setting []int64

// Key returns a canonical string form usable as a map key and in JSON.
func (s Setting) Key() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ",")
}

// ParseSetting inverts Setting.Key.
func ParseSetting(key string) (Setting, error) {
	if key == "" {
		return nil, fmt.Errorf("knobs: empty setting key")
	}
	parts := strings.Split(key, ",")
	s := make(Setting, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("knobs: bad setting key %q: %v", key, err)
		}
		s[i] = v
	}
	return s, nil
}

// Equal reports whether two settings have identical values.
func (s Setting) Equal(o Setting) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the setting.
func (s Setting) Clone() Setting {
	c := make(Setting, len(s))
	copy(c, s)
	return c
}

// String formats the setting with knob names when specs are provided via
// Describe; the raw form is the Key.
func (s Setting) String() string { return s.Key() }

// Describe renders the setting with its knob names, e.g.
// "subme=7 merange=16 ref=5".
func Describe(specs []Spec, s Setting) string {
	if len(specs) != len(s) {
		return s.Key()
	}
	parts := make([]string, len(s))
	for i := range s {
		parts[i] = fmt.Sprintf("%s=%d", specs[i].Name, s[i])
	}
	return strings.Join(parts, " ")
}

// Space is the cartesian space of settings induced by a list of knob
// specs.
type Space struct {
	Specs []Spec
}

// NewSpace validates the specs and returns the setting space.
func NewSpace(specs []Spec) (Space, error) {
	if len(specs) == 0 {
		return Space{}, fmt.Errorf("knobs: no specs")
	}
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return Space{}, err
		}
		if seen[sp.Name] {
			return Space{}, fmt.Errorf("knobs: duplicate knob name %q", sp.Name)
		}
		seen[sp.Name] = true
	}
	return Space{Specs: specs}, nil
}

// Size returns the number of setting combinations.
func (sp Space) Size() int {
	n := 1
	for _, s := range sp.Specs {
		n *= len(s.Values)
	}
	return n
}

// Default returns the default setting (every knob at its default value).
func (sp Space) Default() Setting {
	d := make(Setting, len(sp.Specs))
	for i, s := range sp.Specs {
		d[i] = s.Default
	}
	return d
}

// All enumerates every combination of knob values in deterministic order
// (first knob varies slowest).
func (sp Space) All() []Setting {
	out := make([]Setting, 0, sp.Size())
	cur := make(Setting, len(sp.Specs))
	var rec func(i int)
	rec = func(i int) {
		if i == len(sp.Specs) {
			out = append(out, cur.Clone())
			return
		}
		for _, v := range sp.Specs[i].Values {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Coarse enumerates a sub-lattice with at most maxPerKnob values per knob
// (always including each knob's first, last, and default values). It is
// used to keep large sweeps — x264's 560 combinations, bodytrack's 200 —
// tractable by default while preserving the full ranges; the full grid
// remains available through All.
func (sp Space) Coarse(maxPerKnob int) []Setting {
	if maxPerKnob < 2 {
		maxPerKnob = 2
	}
	sub := make([]Spec, len(sp.Specs))
	for i, s := range sp.Specs {
		sub[i] = Spec{Name: s.Name, Default: s.Default, Values: subsample(s.Values, s.Default, maxPerKnob)}
	}
	return Space{Specs: sub}.All()
}

// subsample picks up to max values from vals, evenly spaced, always
// retaining the first, last and def values, preserving order without
// duplicates.
func subsample(vals []int64, def int64, max int) []int64 {
	if len(vals) <= max {
		out := make([]int64, len(vals))
		copy(out, vals)
		return out
	}
	picked := make(map[int64]bool)
	var out []int64
	add := func(v int64) {
		if !picked[v] {
			picked[v] = true
			out = append(out, v)
		}
	}
	add(vals[0])
	step := float64(len(vals)-1) / float64(max-1)
	for i := 1; i < max-1; i++ {
		add(vals[int(float64(i)*step+0.5)])
	}
	add(vals[len(vals)-1])
	add(def)
	// Restore the original ordering.
	ordered := make([]int64, 0, len(out))
	for _, v := range vals {
		if picked[v] {
			ordered = append(ordered, v)
			picked[v] = false
		}
	}
	return ordered
}

// IndexOf returns the position of the named knob in the spec list, or -1.
func (sp Space) IndexOf(name string) int {
	for i, s := range sp.Specs {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Contains reports whether the setting is a valid point in the space.
func (sp Space) Contains(s Setting) bool {
	if len(s) != len(sp.Specs) {
		return false
	}
	for i, spec := range sp.Specs {
		ok := false
		for _, v := range spec.Values {
			if v == s[i] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
