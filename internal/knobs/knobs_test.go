package knobs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func specs3() []Spec {
	return []Spec{
		{Name: "subme", Values: Range(1, 7, 1), Default: 7},
		{Name: "merange", Values: []int64{1, 2, 4, 8, 16}, Default: 16},
		{Name: "ref", Values: Range(1, 5, 1), Default: 5},
	}
}

func TestRange(t *testing.T) {
	got := Range(10000, 50000, 10000)
	want := []int64{10000, 20000, 30000, 40000, 50000}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestRangePanics(t *testing.T) {
	for _, c := range []struct{ lo, hi, step int64 }{{5, 1, 1}, {1, 5, 0}, {1, 5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Range(%d,%d,%d) did not panic", c.lo, c.hi, c.step)
				}
			}()
			Range(c.lo, c.hi, c.step)
		}()
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Name: "k", Values: []int64{1, 2}, Default: 2}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{Name: "", Values: []int64{1}, Default: 1}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (Spec{Name: "k", Default: 1}).Validate(); err == nil {
		t.Error("empty values accepted")
	}
	if err := (Spec{Name: "k", Values: []int64{1, 2}, Default: 3}).Validate(); err == nil {
		t.Error("default outside values accepted")
	}
}

func TestSettingKeyRoundTrip(t *testing.T) {
	s := Setting{7, 16, 5}
	key := s.Key()
	if key != "7,16,5" {
		t.Errorf("Key = %q", key)
	}
	back, err := ParseSetting(key)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Errorf("round trip = %v, want %v", back, s)
	}
}

func TestParseSettingErrors(t *testing.T) {
	if _, err := ParseSetting(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := ParseSetting("1,x,3"); err == nil {
		t.Error("malformed key accepted")
	}
}

func TestSettingEqualClone(t *testing.T) {
	s := Setting{1, 2}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = 9
	if s[0] == 9 {
		t.Error("clone aliases original")
	}
	if s.Equal(Setting{1}) || s.Equal(Setting{1, 3}) {
		t.Error("Equal false positives")
	}
}

func TestSpaceSizeAndAll(t *testing.T) {
	sp, err := NewSpace(specs3())
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Size(); got != 7*5*5 {
		t.Fatalf("Size = %d, want 175", got)
	}
	all := sp.All()
	if len(all) != sp.Size() {
		t.Fatalf("All returned %d settings, want %d", len(all), sp.Size())
	}
	seen := make(map[string]bool, len(all))
	for _, s := range all {
		if seen[s.Key()] {
			t.Fatalf("duplicate setting %v", s)
		}
		seen[s.Key()] = true
		if !sp.Contains(s) {
			t.Fatalf("enumerated setting %v not contained in space", s)
		}
	}
}

func TestSpaceDefault(t *testing.T) {
	sp, _ := NewSpace(specs3())
	d := sp.Default()
	if !d.Equal(Setting{7, 16, 5}) {
		t.Errorf("Default = %v", d)
	}
	if Describe(sp.Specs, d) != "subme=7 merange=16 ref=5" {
		t.Errorf("Describe = %q", Describe(sp.Specs, d))
	}
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Error("empty specs accepted")
	}
	dup := []Spec{
		{Name: "k", Values: []int64{1}, Default: 1},
		{Name: "k", Values: []int64{2}, Default: 2},
	}
	if _, err := NewSpace(dup); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestCoarseKeepsEndpointsAndDefault(t *testing.T) {
	sp, _ := NewSpace([]Spec{
		{Name: "sm", Values: Range(200, 20000, 200), Default: 20000},
	})
	coarse := Space{Specs: []Spec{{Name: "sm", Values: Range(200, 20000, 200), Default: 20000}}}.Coarse(8)
	if len(coarse) > 9 { // 8 requested (+1 slack if default wasn't on the lattice)
		t.Fatalf("Coarse produced %d settings, want <= 9", len(coarse))
	}
	hasLo, hasHi, hasDef := false, false, false
	for _, s := range coarse {
		switch s[0] {
		case 200:
			hasLo = true
		case 20000:
			hasHi = true
		}
		if s[0] == sp.Default()[0] {
			hasDef = true
		}
	}
	if !hasLo || !hasHi || !hasDef {
		t.Errorf("Coarse missing endpoints/default: %v", coarse)
	}
}

func TestCoarseSmallSpaceUnchanged(t *testing.T) {
	sp, _ := NewSpace(specs3())
	coarse := sp.Coarse(20)
	if len(coarse) != sp.Size() {
		t.Errorf("coarse of small space = %d settings, want %d", len(coarse), sp.Size())
	}
}

// Property: Coarse always yields valid, duplicate-free settings contained
// in the original space, including the default.
func TestCoarseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i * 3)
		}
		def := vals[rng.Intn(n)]
		sp, err := NewSpace([]Spec{{Name: "k", Values: vals, Default: def}})
		if err != nil {
			return false
		}
		max := 2 + rng.Intn(10)
		coarse := sp.Coarse(max)
		if len(coarse) > max+1 {
			return false
		}
		seen := map[string]bool{}
		foundDef := false
		for _, s := range coarse {
			if seen[s.Key()] || !sp.Contains(s) {
				return false
			}
			seen[s.Key()] = true
			if s[0] == def {
				foundDef = true
			}
		}
		return foundDef
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key/ParseSetting round-trips any setting, including negative
// values.
func TestSettingKeyRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		s := Setting(vals)
		back, err := ParseSetting(s.Key())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: All() enumerates exactly Size() unique settings for random
// small spaces, each contained in the space.
func TestAllEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nKnobs := 1 + rng.Intn(3)
		specs := make([]Spec, nKnobs)
		for i := range specs {
			n := 1 + rng.Intn(5)
			vals := make([]int64, n)
			for j := range vals {
				vals[j] = int64(j*2 + i)
			}
			specs[i] = Spec{Name: string(rune('a' + i)), Values: vals, Default: vals[rng.Intn(n)]}
		}
		sp, err := NewSpace(specs)
		if err != nil {
			return false
		}
		all := sp.All()
		if len(all) != sp.Size() {
			return false
		}
		seen := map[string]bool{}
		for _, s := range all {
			if seen[s.Key()] || !sp.Contains(s) {
				return false
			}
			seen[s.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexOf(t *testing.T) {
	sp, _ := NewSpace(specs3())
	if sp.IndexOf("merange") != 1 {
		t.Error("IndexOf merange != 1")
	}
	if sp.IndexOf("nope") != -1 {
		t.Error("IndexOf missing != -1")
	}
}

func TestContains(t *testing.T) {
	sp, _ := NewSpace(specs3())
	if !sp.Contains(Setting{1, 4, 3}) {
		t.Error("valid setting rejected")
	}
	if sp.Contains(Setting{1, 3, 3}) { // merange 3 not a value
		t.Error("invalid value accepted")
	}
	if sp.Contains(Setting{1, 4}) {
		t.Error("short setting accepted")
	}
}
