package knobs

import (
	"fmt"
	"sort"
	"sync"
)

// Value is the recorded content of one control variable for one knob
// setting. Scalars (int, long, float, double in the paper's instrumentor)
// are length-1 vectors; STL-vector-like variables are longer.
type Value []float64

// Clone returns a copy of the value.
func (v Value) Clone() Value {
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// Registry is the dynamic-knob runtime state inside one application: the
// set of registered control variables (each with a callback that writes
// into the application's address space) and, per knob setting, the
// recorded values captured during dynamic knob identification. Apply moves
// the application to a different point in its trade-off space without
// interrupting it (Sec. 2.1: the instrumented application "register[s] the
// address of each control variable and read[s] in the previously recorded
// values corresponding to the different dynamic knob settings").
type Registry struct {
	mu       sync.Mutex
	names    []string
	writers  map[string]func(Value)
	recorded map[string]map[string]Value // setting key -> var name -> value
	current  Setting
	applies  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		writers:  make(map[string]func(Value)),
		recorded: make(map[string]map[string]Value),
	}
}

// RegisterVar registers a control variable by name with the callback that
// stores a value into the application. Registration order is preserved for
// deterministic application.
func (r *Registry) RegisterVar(name string, write func(Value)) error {
	if write == nil {
		return fmt.Errorf("knobs: nil writer for control variable %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.writers[name]; dup {
		return fmt.Errorf("knobs: control variable %q already registered", name)
	}
	r.writers[name] = write
	r.names = append(r.names, name)
	return nil
}

// Vars returns the registered control-variable names in registration
// order.
func (r *Registry) Vars() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Record stores the values of all control variables observed for the
// given setting during an instrumented (identification) run. Every
// registered variable must be covered: the paper's consistency check
// requires all setting combinations to produce the same set of control
// variables.
func (r *Registry) Record(s Setting, vals map[string]Value) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(vals) != len(r.names) {
		return fmt.Errorf("knobs: setting %s records %d variables, registry has %d (inconsistent control variables)", s.Key(), len(vals), len(r.names))
	}
	stored := make(map[string]Value, len(vals))
	for _, n := range r.names {
		v, ok := vals[n]
		if !ok {
			return fmt.Errorf("knobs: setting %s missing value for control variable %q", s.Key(), n)
		}
		stored[n] = v.Clone()
	}
	r.recorded[s.Key()] = stored
	return nil
}

// Recorded returns the setting keys with recorded values, sorted.
func (r *Registry) Recorded() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.recorded))
	for k := range r.recorded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Apply writes the recorded values for the setting into the application
// through the registered callbacks, in registration order, and remembers
// the setting as current. Subsequent iterations of the application's main
// control loop read the updated control variables.
func (r *Registry) Apply(s Setting) error {
	r.mu.Lock()
	vals, ok := r.recorded[s.Key()]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("knobs: no recorded values for setting %s", s.Key())
	}
	writers := make([]func(Value), len(r.names))
	values := make([]Value, len(r.names))
	for i, n := range r.names {
		writers[i] = r.writers[n]
		values[i] = vals[n]
	}
	r.current = s.Clone()
	r.applies++
	r.mu.Unlock()
	// Invoke callbacks outside the lock: writers may take application
	// locks of their own.
	for i := range writers {
		writers[i](values[i].Clone())
	}
	return nil
}

// Current returns the most recently applied setting (nil before the first
// Apply).
func (r *Registry) Current() Setting {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.current == nil {
		return nil
	}
	return r.current.Clone()
}

// Applies returns how many times Apply has succeeded; useful for
// instrumentation-overhead accounting.
func (r *Registry) Applies() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applies
}
