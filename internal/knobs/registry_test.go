package knobs

import (
	"sync"
	"testing"
)

func TestRegistryApplyWritesRecordedValues(t *testing.T) {
	r := NewRegistry()
	var trials float64
	var weights []float64
	if err := r.RegisterVar("nTrials", func(v Value) { trials = v[0] }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterVar("weights", func(v Value) { weights = v }); err != nil {
		t.Fatal(err)
	}

	fast := Setting{100}
	slow := Setting{1000}
	if err := r.Record(fast, map[string]Value{"nTrials": {100}, "weights": {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(slow, map[string]Value{"nTrials": {1000}, "weights": {3, 4}}); err != nil {
		t.Fatal(err)
	}

	if err := r.Apply(fast); err != nil {
		t.Fatal(err)
	}
	if trials != 100 || weights[0] != 1 {
		t.Fatalf("after Apply(fast): trials=%v weights=%v", trials, weights)
	}
	if err := r.Apply(slow); err != nil {
		t.Fatal(err)
	}
	if trials != 1000 || weights[1] != 4 {
		t.Fatalf("after Apply(slow): trials=%v weights=%v", trials, weights)
	}
	if !r.Current().Equal(slow) {
		t.Fatalf("Current = %v, want %v", r.Current(), slow)
	}
	if r.Applies() != 2 {
		t.Fatalf("Applies = %d, want 2", r.Applies())
	}
}

func TestRegistryApplyUnknownSetting(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterVar("x", func(Value) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(Setting{5}); err == nil {
		t.Error("Apply of unrecorded setting should fail")
	}
}

func TestRegistryDuplicateVar(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterVar("x", func(Value) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterVar("x", func(Value) {}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.RegisterVar("y", nil); err == nil {
		t.Error("nil writer accepted")
	}
}

func TestRegistryRecordConsistencyCheck(t *testing.T) {
	r := NewRegistry()
	_ = r.RegisterVar("a", func(Value) {})
	_ = r.RegisterVar("b", func(Value) {})
	// Missing variable "b": the consistency condition fails.
	if err := r.Record(Setting{1}, map[string]Value{"a": {1}}); err == nil {
		t.Error("incomplete record accepted")
	}
	// Wrong variable name.
	if err := r.Record(Setting{1}, map[string]Value{"a": {1}, "c": {2}}); err == nil {
		t.Error("record with unknown variable accepted")
	}
	// Correct record.
	if err := r.Record(Setting{1}, map[string]Value{"a": {1}, "b": {2}}); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}

func TestRegistryRecordedKeysSorted(t *testing.T) {
	r := NewRegistry()
	_ = r.RegisterVar("a", func(Value) {})
	_ = r.Record(Setting{2}, map[string]Value{"a": {2}})
	_ = r.Record(Setting{1}, map[string]Value{"a": {1}})
	got := r.Recorded()
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("Recorded = %v", got)
	}
}

func TestRegistryValueIsolation(t *testing.T) {
	r := NewRegistry()
	var got Value
	_ = r.RegisterVar("v", func(v Value) { got = v })
	orig := map[string]Value{"v": {1, 2, 3}}
	_ = r.Record(Setting{1}, orig)
	orig["v"][0] = 99 // mutate caller's copy after recording
	if err := r.Apply(Setting{1}); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("recorded value aliased caller slice: got %v", got)
	}
	got[1] = 42 // mutate receiver's copy
	if err := r.Apply(Setting{1}); err != nil {
		t.Fatal(err)
	}
	if got[1] != 2 {
		t.Fatalf("applied value aliased registry storage: got %v", got)
	}
}

func TestRegistryCurrentNilBeforeApply(t *testing.T) {
	r := NewRegistry()
	if r.Current() != nil {
		t.Error("Current before Apply should be nil")
	}
}

func TestRegistryConcurrentApply(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	val := 0.0
	_ = r.RegisterVar("x", func(v Value) {
		mu.Lock()
		val = v[0]
		mu.Unlock()
	})
	_ = r.Record(Setting{1}, map[string]Value{"x": {1}})
	_ = r.Record(Setting{2}, map[string]Value{"x": {2}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := Setting{int64(1 + i%2)}
			for j := 0; j < 200; j++ {
				if err := r.Apply(s); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if val != 1 && val != 2 {
		t.Fatalf("val = %v after concurrent applies", val)
	}
}
