// Package model implements the analytical models of Sec. 3 of the paper:
// the energy accounting for DVFS with and without dynamic knobs
// (Eqs. 12–19, illustrated by the paper's Figs. 3 and 4) and the server
// consolidation model (Eqs. 20–24).
package model

import (
	"fmt"
	"math"
)

// DVFSParams describes one task execution in the Fig. 3 setting.
type DVFSParams struct {
	PNoDVFS float64 // watts while running at the high power state
	PDVFS   float64 // watts while running at the reduced state
	PIdle   float64 // watts while idle
	T1      float64 // task time at the high state (seconds)
	TDelay  float64 // slack between task completion and the deadline
}

// Validate checks physical sanity.
func (p DVFSParams) Validate() error {
	if p.T1 <= 0 || p.TDelay < 0 {
		return fmt.Errorf("model: T1 must be positive and TDelay non-negative")
	}
	if p.PIdle < 0 || p.PDVFS < p.PIdle || p.PNoDVFS < p.PDVFS {
		return fmt.Errorf("model: want PNoDVFS >= PDVFS >= PIdle >= 0")
	}
	return nil
}

// T2 is the stretched execution time under DVFS: t2 = t1 + tdelay
// (Fig. 3b — DVFS absorbs exactly the slack).
func (p DVFSParams) T2() float64 { return p.T1 + p.TDelay }

// T2FromFrequencies predicts t2 for a CPU-bound task from the frequency
// ratio: t2 = (f_nodvfs / f_dvfs) · t1.
func T2FromFrequencies(t1, fNoDVFS, fDVFS float64) float64 {
	return t1 * fNoDVFS / fDVFS
}

// EnergyNoDVFS is the energy of running hot then idling through the
// slack: Pnodvfs·t1 + Pidle·tdelay (the first operand of Eq. 12).
func (p DVFSParams) EnergyNoDVFS() float64 {
	return p.PNoDVFS*p.T1 + p.PIdle*p.TDelay
}

// EnergyDVFS is the energy of stretching the task across the slack at the
// reduced state: Pdvfs·t2 (the second operand of Eq. 12).
func (p DVFSParams) EnergyDVFS() float64 {
	return p.PDVFS * p.T2()
}

// DVFSSavings is Eq. 12: the energy saved by DVFS relative to
// race-to-idle at the high state.
func (p DVFSParams) DVFSSavings() float64 {
	return p.EnergyNoDVFS() - p.EnergyDVFS()
}

// ElasticEnergy evaluates Eqs. 13–17 for a dynamic-knob speedup S(QoS):
//
//	E1 (Fig. 4a): run at the high state for t1/S, idle the rest —
//	  dynamic knobs accelerating race-to-idle.
//	E2 (Fig. 4b): run at the reduced state for t2/S, idle the rest —
//	  dynamic knobs shrinking the stretched execution.
//
// It returns both energies and their minimum (Eq. 17).
func (p DVFSParams) ElasticEnergy(s float64) (e1, e2, eElastic float64, err error) {
	if s < 1 {
		return 0, 0, 0, fmt.Errorf("model: speedup %v < 1", s)
	}
	t1p := p.T1 / s
	tDelayP := p.TDelay + p.T1 - t1p
	e1 = p.PNoDVFS*t1p + p.PIdle*tDelayP // Eq. 14
	t2 := p.T2()
	t2p := t2 / s
	tDelayPP := t2 - t2p
	e2 = p.PDVFS*t2p + p.PIdle*tDelayPP // Eq. 16
	return e1, e2, math.Min(e1, e2), nil
}

// BaselineEnergy is Eq. 18: the better of plain race-to-idle and plain
// DVFS without dynamic knobs.
func (p DVFSParams) BaselineEnergy() float64 {
	return math.Min(p.EnergyNoDVFS(), p.EnergyDVFS())
}

// ElasticSavings is Eq. 19: energy saved by adding dynamic knobs (at
// speedup S) on top of the best non-elastic strategy.
func (p DVFSParams) ElasticSavings(s float64) (float64, error) {
	_, _, eElastic, err := p.ElasticEnergy(s)
	if err != nil {
		return 0, err
	}
	return p.BaselineEnergy() - eElastic, nil
}

// MachinesNeeded is Eq. 21: the machines required to serve the original
// peak load when every instance can be sped up by S(QoS). With
// Wtotal = Wmachine·Norig it reduces to ceil(Norig/S).
func MachinesNeeded(nOrig int, s float64) (int, error) {
	if nOrig < 1 {
		return 0, fmt.Errorf("model: nOrig %d < 1", nOrig)
	}
	if s < 1 {
		return 0, fmt.Errorf("model: speedup %v < 1", s)
	}
	n := int(math.Ceil(float64(nOrig) / s))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// ConsolidationPower evaluates Eqs. 22–24. uOrig is the average
// utilization of the original system; the consolidated system's
// utilization follows as uNew = uOrig·nOrig/nNew (the paper's
// Unew = Norig/Nnew normalization folded with the load level), capped at
// 1.
func ConsolidationPower(nOrig, nNew int, uOrig, pLoad, pIdle float64) (pOrig, pNew, saved float64, err error) {
	if nOrig < 1 || nNew < 1 || nNew > nOrig {
		return 0, 0, 0, fmt.Errorf("model: machine counts nOrig=%d nNew=%d invalid", nOrig, nNew)
	}
	if uOrig < 0 || uOrig > 1 {
		return 0, 0, 0, fmt.Errorf("model: utilization %v outside [0,1]", uOrig)
	}
	uNew := uOrig * float64(nOrig) / float64(nNew)
	if uNew > 1 {
		uNew = 1
	}
	pOrig = float64(nOrig) * (uOrig*pLoad + (1-uOrig)*pIdle) // Eq. 22
	pNew = float64(nNew) * (uNew*pLoad + (1-uNew)*pIdle)     // Eq. 23
	return pOrig, pNew, pOrig - pNew, nil                    // Eq. 24
}
