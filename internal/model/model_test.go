package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperParams uses the platform's calibrated anchor numbers: 210 W hot,
// 165 W at the lowest state, 90 W idle.
func paperParams() DVFSParams {
	return DVFSParams{PNoDVFS: 210, PDVFS: 165, PIdle: 90, T1: 10, TDelay: 5}
}

func TestValidate(t *testing.T) {
	if err := paperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := paperParams()
	bad.T1 = 0
	if bad.Validate() == nil {
		t.Error("T1=0 accepted")
	}
	bad = paperParams()
	bad.PIdle = 300
	if bad.Validate() == nil {
		t.Error("inverted power ordering accepted")
	}
}

func TestDVFSSavingsEq12(t *testing.T) {
	p := paperParams()
	// Eq. 12 by hand: (210·10 + 90·5) − 165·15 = 2550 − 2475 = 75.
	if got := p.DVFSSavings(); math.Abs(got-75) > 1e-9 {
		t.Fatalf("DVFS savings = %v, want 75", got)
	}
}

func TestT2FromFrequencies(t *testing.T) {
	if got := T2FromFrequencies(10, 2.4, 1.6); math.Abs(got-15) > 1e-9 {
		t.Fatalf("t2 = %v, want 15 (CPU-bound stretch)", got)
	}
}

func TestElasticEnergyEqs13to17(t *testing.T) {
	p := paperParams()
	e1, e2, eMin, err := p.ElasticEnergy(2)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 14: t1' = 5, tdelay' = 10 -> 210·5 + 90·10 = 1950.
	if math.Abs(e1-1950) > 1e-9 {
		t.Fatalf("E1 = %v, want 1950", e1)
	}
	// Eq. 16: t2' = 7.5, tdelay'' = 7.5 -> 165·7.5 + 90·7.5 = 1912.5.
	if math.Abs(e2-1912.5) > 1e-9 {
		t.Fatalf("E2 = %v, want 1912.5", e2)
	}
	if eMin != e2 {
		t.Fatalf("elastic min should pick E2 here")
	}
}

func TestElasticSavingsEq19(t *testing.T) {
	p := paperParams()
	// Baseline (Eq. 18) = min(2550, 2475) = 2475; elastic = 1912.5.
	s, err := p.ElasticSavings(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-562.5) > 1e-9 {
		t.Fatalf("elastic savings = %v, want 562.5", s)
	}
	if _, err := p.ElasticSavings(0.5); err == nil {
		t.Error("speedup < 1 accepted")
	}
}

// Property: elastic energy never exceeds the baseline (knobs can only
// help, Eq. 19 >= 0), and savings grow with speedup.
func TestElasticMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := DVFSParams{
			PIdle:  50 + rng.Float64()*100,
			T1:     1 + rng.Float64()*100,
			TDelay: rng.Float64() * 100,
		}
		p.PDVFS = p.PIdle + rng.Float64()*100
		p.PNoDVFS = p.PDVFS + rng.Float64()*100
		s1 := 1 + rng.Float64()*3
		s2 := s1 + rng.Float64()*3
		sav1, err := p.ElasticSavings(s1)
		if err != nil {
			return false
		}
		sav2, err := p.ElasticSavings(s2)
		if err != nil {
			return false
		}
		return sav1 >= -1e-9 && sav2 >= sav1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMachinesNeededEq21(t *testing.T) {
	cases := []struct {
		nOrig int
		s     float64
		want  int
	}{
		{4, 4, 1},   // the paper's PARSEC consolidation: 4 -> 1 (3/4 reduction)
		{3, 1.5, 2}, // the paper's swish++ consolidation: 3 -> 2 (1/3 reduction)
		{4, 3, 2},
		{10, 1, 10},
		{1, 100, 1},
	}
	for _, c := range cases {
		got, err := MachinesNeeded(c.nOrig, c.s)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("MachinesNeeded(%d, %v) = %d, want %d", c.nOrig, c.s, got, c.want)
		}
	}
	if _, err := MachinesNeeded(0, 2); err == nil {
		t.Error("nOrig=0 accepted")
	}
	if _, err := MachinesNeeded(4, 0.5); err == nil {
		t.Error("speedup<1 accepted")
	}
}

func TestConsolidationPowerEqs22to24(t *testing.T) {
	// 4 machines at 25% utilization vs 1 machine: the paper reports
	// ~400 W (66%) savings at this point for the PARSEC benchmarks.
	pOrig, pNew, saved, err := ConsolidationPower(4, 1, 0.25, 210, 90)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 22: 4·(0.25·210 + 0.75·90) = 4·120 = 480.
	if math.Abs(pOrig-480) > 1e-9 {
		t.Fatalf("pOrig = %v, want 480", pOrig)
	}
	// uNew = 1.0 -> Eq. 23: 1·210 = 210.
	if math.Abs(pNew-210) > 1e-9 {
		t.Fatalf("pNew = %v, want 210", pNew)
	}
	if math.Abs(saved-270) > 1e-9 {
		t.Fatalf("saved = %v, want 270", saved)
	}
	savedFrac := saved / pOrig
	if savedFrac < 0.5 || savedFrac > 0.7 {
		t.Fatalf("fractional savings = %v, want paper's ~2/3 ballpark", savedFrac)
	}
}

func TestConsolidationPowerValidation(t *testing.T) {
	if _, _, _, err := ConsolidationPower(1, 2, 0.5, 210, 90); err == nil {
		t.Error("nNew > nOrig accepted")
	}
	if _, _, _, err := ConsolidationPower(4, 1, 1.5, 210, 90); err == nil {
		t.Error("utilization > 1 accepted")
	}
}

// Property: consolidated power never exceeds original power when both
// serve the same load (uNew capped at 1 encodes "knobs absorb the
// overflow").
func TestConsolidationSavesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nOrig := 2 + rng.Intn(10)
		nNew := 1 + rng.Intn(nOrig)
		u := rng.Float64()
		pIdle := 50 + rng.Float64()*100
		pLoad := pIdle + 1 + rng.Float64()*200
		pOrig, pNew, saved, err := ConsolidationPower(nOrig, nNew, u, pLoad, pIdle)
		if err != nil {
			return false
		}
		return pNew <= pOrig+1e-9 && math.Abs(saved-(pOrig-pNew)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
