package platform

import (
	"sync"
	"time"
)

// Meter emulates the WattsUp device of Sec. 5.1: it integrates energy as
// the machine executes and exposes mean power per 1-second sampling
// window plus whole-run statistics. It is safe for concurrent use — an
// observer may read while the machine executes.
type Meter struct {
	m *Machine

	mu sync.Mutex

	// Current (partial) sampling window.
	windowEnergy float64 // joules in the open window
	windowTime   float64 // seconds covered in the open window

	samples []float64 // mean watts per completed 1s window

	totalEnergy float64 // joules over the whole run
	totalTime   float64 // seconds over the whole run
}

// SampleInterval is the WattsUp sampling period.
const SampleInterval = time.Second

func newMeter(m *Machine) *Meter { return &Meter{m: m} }

// accumulate charges a duration of execution at the given power draw to
// the meter, closing 1-second windows as they fill. The machine computes
// the power under its own lock; an in-flight frequency change lands in
// the next accumulation, as with the real meter's mixed-state windows.
func (mt *Meter) accumulate(d time.Duration, power float64) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	remaining := d.Seconds()
	for remaining > 0 {
		space := SampleInterval.Seconds() - mt.windowTime
		step := remaining
		if step > space {
			step = space
		}
		mt.windowEnergy += power * step
		mt.windowTime += step
		mt.totalEnergy += power * step
		mt.totalTime += step
		remaining -= step
		if mt.windowTime >= SampleInterval.Seconds()-1e-12 {
			mt.samples = append(mt.samples, mt.windowEnergy/mt.windowTime)
			mt.windowEnergy, mt.windowTime = 0, 0
		}
	}
}

// Samples returns the completed 1-second mean-power readings.
func (mt *Meter) Samples() []float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	out := make([]float64, len(mt.samples))
	copy(out, mt.samples)
	return out
}

// MeanPower returns the energy-weighted mean power in watts over the
// whole run (0 before any time has elapsed).
func (mt *Meter) MeanPower() float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.totalTime <= 0 {
		return 0
	}
	return mt.totalEnergy / mt.totalTime
}

// Energy returns total joules consumed.
func (mt *Meter) Energy() float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.totalEnergy
}

// Reset clears all accumulated readings.
func (mt *Meter) Reset() {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.windowEnergy, mt.windowTime = 0, 0
	mt.totalEnergy, mt.totalTime = 0, 0
	mt.samples = nil
}
