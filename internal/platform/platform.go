// Package platform simulates the paper's experimental machine (Sec. 5.1):
// a Dell PowerEdge R410 whose processors expose seven power states with
// clock frequencies from 2.4 GHz down to 1.6 GHz, measured by a WattsUp
// meter sampling full-system power at 1-second intervals, with idle power
// around 90 W and full load up to ~220 W.
//
// Applications execute real computation; the machine converts their
// measured work units into *virtual time* as a function of the current
// frequency, so imposing a power cap (forcing a lower DVFS state) slows
// the application exactly the way the paper's cpufrequtils-driven cap
// does, deterministically. The power model
//
//	P(f, util) = P_idle + util · (c1·f + c3·f³)
//
// is fit to the paper's reported measurements: ~90 W idle, ~210 W at full
// load at 2.4 GHz, ~165 W at full load at 1.6 GHz (Figs. 6a–6d). The
// cubic term reflects the V²f scaling of dynamic power under DVFS.
package platform

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
)

// Frequencies are the seven DVFS states in GHz, highest first — the
// x-axis of Fig. 6.
var Frequencies = []float64{2.4, 2.26, 2.13, 2.0, 1.86, 1.73, 1.6}

// PowerModel maps frequency and utilization to full-system watts.
type PowerModel struct {
	Idle float64 // watts at zero utilization
	C1   float64 // linear dynamic term, W/GHz
	C3   float64 // cubic dynamic term, W/GHz³
}

// DefaultPowerModel is fit to the paper's measurements (see package doc).
func DefaultPowerModel() PowerModel {
	// Solve P(2.4,1)=210, P(1.6,1)=165 with Idle=90:
	//   2.4·c1 + 13.824·c3 = 120
	//   1.6·c1 +  4.096·c3 =  75
	return PowerModel{Idle: 90, C1: 44.375, C3: 0.9765625}
}

// Power returns full-system watts at frequency f (GHz) and utilization
// util in [0,1].
func (m PowerModel) Power(f, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return m.Idle + util*(m.C1*f+m.C3*f*f*f)
}

// SpeedPerGHz converts work units (application operation counts) to
// execution rate: a machine at f GHz retires f×SpeedPerGHz work units per
// second. The constant is a calibration scale — only ratios matter for
// every reproduced result.
const SpeedPerGHz = 1e8

// Machine is one simulated server. It is safe for concurrent use: a
// runtime goroutine may Execute/Idle while a supervisor goroutine changes
// power states or interference and reads the meter (the fleet arbiter
// does exactly this).
type Machine struct {
	clk   *clock.Virtual
	model PowerModel
	cores int
	meter *Meter

	mu           sync.Mutex
	state        int     // index into Frequencies
	interference float64 // fraction of capacity consumed by co-located load

	// pending is a scheduled DVFS change (SetStateAt) that lands when
	// the virtual clock reaches pendingAt.
	pending      bool
	pendingState int
	pendingAt    time.Time

	busy time.Duration // accumulated busy time
	all  time.Duration // accumulated total time
}

// Config configures a Machine.
type Config struct {
	// Clock is the virtual time source (required).
	Clock *clock.Virtual
	// Model is the power model (default DefaultPowerModel).
	Model PowerModel
	// Cores is the core count (default 8 — the paper's dual quad-core
	// machines).
	Cores int
}

// NewMachine builds a machine in its highest power state.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("platform: Config.Clock is required")
	}
	if cfg.Model == (PowerModel{}) {
		cfg.Model = DefaultPowerModel()
	}
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("platform: cores must be positive")
	}
	m := &Machine{clk: cfg.Clock, model: cfg.Model, cores: cfg.Cores}
	m.meter = newMeter(m)
	return m, nil
}

// Clock returns the machine's clock.
func (m *Machine) Clock() *clock.Virtual { return m.clk }

// Cores returns the core count.
func (m *Machine) Cores() int { return m.cores }

// applyPendingLocked installs a scheduled state change once the clock
// has reached its landing time. Callers hold m.mu.
func (m *Machine) applyPendingLocked() {
	if m.pending && !m.clk.Now().Before(m.pendingAt) {
		m.state = m.pendingState
		m.pending = false
	}
}

// Frequency returns the current clock frequency in GHz.
func (m *Machine) Frequency() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyPendingLocked()
	return Frequencies[m.state]
}

// State returns the current DVFS state index (0 = fastest).
func (m *Machine) State() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyPendingLocked()
	return m.state
}

// SetState selects a DVFS state by index (0 = 2.4 GHz). It returns an
// error for out-of-range states. Any scheduled SetStateAt still in
// flight is cancelled: an explicit cap overrides a queued one.
func (m *Machine) SetState(i int) error {
	if i < 0 || i >= len(Frequencies) {
		return fmt.Errorf("platform: power state %d out of range [0,%d]", i, len(Frequencies)-1)
	}
	m.mu.Lock()
	m.state = i
	m.pending = false
	m.mu.Unlock()
	return nil
}

// SetStateAt schedules a DVFS state change to land at virtual time at —
// the paper's cpufrequtils cap arriving asynchronously between beats
// rather than at a control-round boundary. If the clock has already
// reached at, the change applies immediately. Otherwise it applies
// lazily once the machine's clock crosses at: work in flight completes
// at the old frequency (beats are the atomic unit, as on real hardware
// where a DVFS transition lands at the next scheduling boundary), and an
// Idle period spanning the landing time is split so each side is charged
// at the right state. A later SetStateAt or SetState replaces the
// pending change.
func (m *Machine) SetStateAt(i int, at time.Time) error {
	if i < 0 || i >= len(Frequencies) {
		return fmt.Errorf("platform: power state %d out of range [0,%d]", i, len(Frequencies)-1)
	}
	m.mu.Lock()
	if !at.After(m.clk.Now()) {
		m.state = i
		m.pending = false
	} else {
		m.pending, m.pendingState, m.pendingAt = true, i, at
	}
	m.mu.Unlock()
	return nil
}

// ImposePowerCap drops the machine to its lowest-power state (the paper's
// cap scenario forces 2.4 GHz -> 1.6 GHz).
func (m *Machine) ImposePowerCap() { _ = m.SetState(len(Frequencies) - 1) }

// LiftPowerCap restores the highest power state.
func (m *Machine) LiftPowerCap() { _ = m.SetState(0) }

// SetInterference models a co-located load consuming the given fraction
// of the machine's capacity (a load spike from another tenant, a
// background job). PowerDial is explicitly "designed to respond to any
// event that changes the balance between the computational demand and
// the resources available" (Sec. 7) — interference slows the controlled
// application exactly like a frequency drop, and the controller
// compensates the same way. Fractions outside [0, 0.95] are clamped.
func (m *Machine) SetInterference(fraction float64) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 0.95 {
		fraction = 0.95
	}
	m.mu.Lock()
	m.interference = fraction
	m.mu.Unlock()
}

// Interference returns the current co-located-load fraction.
func (m *Machine) Interference() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.interference
}

// speedLocked is Speed with m.mu held.
func (m *Machine) speedLocked() float64 {
	return Frequencies[m.state] * SpeedPerGHz * (1 - m.interference)
}

// Speed returns the current execution rate in work units per second for a
// single-core workload, net of co-located interference.
func (m *Machine) Speed() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applyPendingLocked()
	return m.speedLocked()
}

// Execute runs cost work units at the current frequency, advancing the
// virtual clock and accounting the time as busy. It returns the elapsed
// virtual duration. A concurrent SetState or SetInterference takes
// effect at the next Execute, as a DVFS transition lands at the next
// scheduling boundary on real hardware.
func (m *Machine) Execute(cost float64) time.Duration {
	if cost <= 0 {
		return 0
	}
	m.mu.Lock()
	m.applyPendingLocked()
	seconds := cost / m.speedLocked()
	d := time.Duration(seconds * float64(time.Second))
	power := m.model.Power(Frequencies[m.state], 1)
	m.busy += d
	m.all += d
	m.mu.Unlock()
	m.meter.accumulate(d, power)
	m.clk.Advance(d)
	return d
}

// Run books d of busy time at the current operating point without an
// iteration boundary — the fleet's fluid-limit mode renders a whole
// span of analytic service through it instead of one Execute per beat.
// Callers must cut spans at scheduled state landings (the fleet's
// fluid drains are bounded by re-arbitration instants), so a single
// pending-state apply at the span start suffices, exactly like
// Execute.
func (m *Machine) Run(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	m.applyPendingLocked()
	power := m.model.Power(Frequencies[m.state], 1)
	m.busy += d
	m.all += d
	m.mu.Unlock()
	m.meter.accumulate(d, power)
	m.clk.Advance(d)
}

// Idle advances the clock with the controlled application idle. Any
// co-located interference keeps consuming its share of the machine, so
// the meter charges that utilization. An idle period spanning a
// scheduled SetStateAt landing time is split at the boundary so each
// side is charged at the correct state.
func (m *Machine) Idle(d time.Duration) {
	for d > 0 {
		m.mu.Lock()
		m.applyPendingLocked()
		seg := d
		if m.pending {
			if until := m.pendingAt.Sub(m.clk.Now()); until < seg {
				seg = until
			}
		}
		power := m.model.Power(Frequencies[m.state], m.interference)
		m.all += seg
		m.mu.Unlock()
		m.meter.accumulate(seg, power)
		m.clk.Advance(seg)
		d -= seg
	}
}

// Utilization returns the busy fraction of all accounted time.
func (m *Machine) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.all <= 0 {
		return 0
	}
	return float64(m.busy) / float64(m.all)
}

// Times returns the accumulated busy and total durations. The fleet
// supervisor samples deltas of these each control quantum to account
// host-level power across co-resident instances.
func (m *Machine) Times() (busy, all time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.busy, m.all
}

// Meter returns the machine's power meter.
func (m *Machine) Meter() *Meter { return m.meter }
