package platform

import (
	"math"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(Config{Clock: clock.NewVirtual(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPowerModelMatchesPaperAnchors(t *testing.T) {
	pm := DefaultPowerModel()
	cases := []struct {
		f, util, want, tol float64
	}{
		{2.4, 0, 90, 0.1},  // idle ~90 W
		{2.4, 1, 210, 0.5}, // full load, highest state
		{1.6, 1, 165, 0.5}, // full load, lowest state (power cap)
	}
	for _, c := range cases {
		if got := pm.Power(c.f, c.util); math.Abs(got-c.want) > c.tol {
			t.Errorf("P(%v, %v) = %v, want ~%v", c.f, c.util, got, c.want)
		}
	}
}

func TestPowerModelMonotone(t *testing.T) {
	pm := DefaultPowerModel()
	for i := 1; i < len(Frequencies); i++ {
		hi := pm.Power(Frequencies[i-1], 1)
		lo := pm.Power(Frequencies[i], 1)
		if lo >= hi {
			t.Errorf("power not decreasing with frequency: P(%v)=%v >= P(%v)=%v",
				Frequencies[i], lo, Frequencies[i-1], hi)
		}
	}
	if pm.Power(2.4, 0.5) >= pm.Power(2.4, 1) {
		t.Error("power should increase with utilization")
	}
	// Utilization clamps.
	if pm.Power(2.4, 2) != pm.Power(2.4, 1) || pm.Power(2.4, -1) != pm.Power(2.4, 0) {
		t.Error("utilization clamping broken")
	}
}

func TestSevenPowerStates(t *testing.T) {
	if len(Frequencies) != 7 {
		t.Fatalf("states = %d, want 7 (paper Sec. 5.1)", len(Frequencies))
	}
	if Frequencies[0] != 2.4 || Frequencies[6] != 1.6 {
		t.Fatalf("frequency range = [%v, %v], want [2.4, 1.6]", Frequencies[0], Frequencies[6])
	}
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewMachine(Config{Clock: clock.NewVirtual(time.Unix(0, 0)), Cores: -1}); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestExecuteAdvancesVirtualTime(t *testing.T) {
	m := newTestMachine(t)
	start := m.Clock().Now()
	d := m.Execute(2.4 * SpeedPerGHz) // exactly one second at 2.4 GHz
	if math.Abs(d.Seconds()-1) > 1e-9 {
		t.Fatalf("duration = %v, want 1s", d)
	}
	if got := m.Clock().Now().Sub(start); got != d {
		t.Fatalf("clock advanced %v, want %v", got, d)
	}
}

func TestFrequencyScalesExecution(t *testing.T) {
	m := newTestMachine(t)
	cost := 1.0e8
	dFast := m.Execute(cost)
	m.ImposePowerCap()
	if m.Frequency() != 1.6 {
		t.Fatalf("capped frequency = %v, want 1.6", m.Frequency())
	}
	dSlow := m.Execute(cost)
	ratio := dSlow.Seconds() / dFast.Seconds()
	// Durations quantize to nanoseconds, so allow a relative 1e-6.
	if math.Abs(ratio-2.4/1.6) > 1e-6 {
		t.Fatalf("slowdown ratio = %v, want %v", ratio, 2.4/1.6)
	}
	m.LiftPowerCap()
	if m.Frequency() != 2.4 {
		t.Fatalf("uncapped frequency = %v, want 2.4", m.Frequency())
	}
}

func TestSetStateValidation(t *testing.T) {
	m := newTestMachine(t)
	if err := m.SetState(7); err == nil {
		t.Error("out-of-range state accepted")
	}
	if err := m.SetState(-1); err == nil {
		t.Error("negative state accepted")
	}
	if err := m.SetState(3); err != nil || m.Frequency() != 2.0 {
		t.Errorf("SetState(3): err=%v freq=%v", err, m.Frequency())
	}
}

func TestUtilizationAccounting(t *testing.T) {
	m := newTestMachine(t)
	m.Execute(2.4 * SpeedPerGHz) // 1s busy
	m.Idle(3 * time.Second)      // 3s idle
	if got := m.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}

func TestMeterSamplesEverySecond(t *testing.T) {
	m := newTestMachine(t)
	// 2.5 seconds of full-load execution -> 2 complete samples.
	m.Execute(2.5 * 2.4 * SpeedPerGHz)
	samples := m.Meter().Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	want := DefaultPowerModel().Power(2.4, 1)
	for _, s := range samples {
		if math.Abs(s-want) > 0.01 {
			t.Fatalf("sample = %v, want %v", s, want)
		}
	}
}

func TestMeterMixedWindow(t *testing.T) {
	m := newTestMachine(t)
	// Half a second busy, half idle: the window mean is the average.
	m.Execute(0.5 * 2.4 * SpeedPerGHz)
	m.Idle(500 * time.Millisecond)
	samples := m.Meter().Samples()
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(samples))
	}
	pm := DefaultPowerModel()
	want := (pm.Power(2.4, 1) + pm.Power(2.4, 0)) / 2
	if math.Abs(samples[0]-want) > 0.01 {
		t.Fatalf("mixed sample = %v, want %v", samples[0], want)
	}
}

func TestMeterMeanPowerAndEnergy(t *testing.T) {
	m := newTestMachine(t)
	m.Idle(2 * time.Second)
	pm := DefaultPowerModel()
	if got := m.Meter().MeanPower(); math.Abs(got-pm.Idle) > 1e-9 {
		t.Fatalf("mean power = %v, want %v", got, pm.Idle)
	}
	if got := m.Meter().Energy(); math.Abs(got-2*pm.Idle) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, 2*pm.Idle)
	}
	m.Meter().Reset()
	if m.Meter().MeanPower() != 0 || len(m.Meter().Samples()) != 0 {
		t.Fatal("Reset did not clear meter")
	}
}

func TestExecuteZeroCost(t *testing.T) {
	m := newTestMachine(t)
	if d := m.Execute(0); d != 0 {
		t.Fatal("zero cost should take zero time")
	}
	m.Idle(-time.Second) // no-op, no panic
}

func TestInterferenceSlowsExecution(t *testing.T) {
	m := newTestMachine(t)
	d0 := m.Execute(1e8)
	m.SetInterference(0.5)
	if m.Interference() != 0.5 {
		t.Fatalf("Interference = %v", m.Interference())
	}
	d1 := m.Execute(1e8)
	if math.Abs(d1.Seconds()/d0.Seconds()-2) > 1e-6 {
		t.Fatalf("50%% interference should double execution time: ratio %v", d1.Seconds()/d0.Seconds())
	}
	// Clamping.
	m.SetInterference(-1)
	if m.Interference() != 0 {
		t.Error("negative interference not clamped")
	}
	m.SetInterference(2)
	if m.Interference() != 0.95 {
		t.Error("interference not clamped at 0.95")
	}
}

func TestInterferenceKeepsMachinePowered(t *testing.T) {
	m := newTestMachine(t)
	m.SetInterference(0.5)
	m.Idle(2 * time.Second)
	pm := DefaultPowerModel()
	want := pm.Power(2.4, 0.5)
	if got := m.Meter().MeanPower(); math.Abs(got-want) > 0.01 {
		t.Fatalf("idle power under interference = %v, want %v (co-located load still burns)", got, want)
	}
}

func TestMeanPowerUnderCapDrops(t *testing.T) {
	m := newTestMachine(t)
	m.Execute(2.4 * SpeedPerGHz) // 1s at 2.4
	e1 := m.Meter().MeanPower()
	m.ImposePowerCap()
	m.Execute(10 * 1.6 * SpeedPerGHz) // 10s at 1.6
	e2 := m.Meter().MeanPower()
	if e2 >= e1 {
		t.Fatalf("mean power after cap %v, want below %v", e2, e1)
	}
}

// TestSetStateAtLandsMidStream checks the async cap event: a state
// change scheduled for a future virtual time must not affect work
// executed before that time, must split an idle period spanning the
// landing time so each side is charged at the right state, and must
// govern all work after it.
func TestSetStateAtLandsMidStream(t *testing.T) {
	m := newTestMachine(t)
	lowest := len(Frequencies) - 1
	if err := m.SetStateAt(lowest, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Work before the landing time still runs at 2.4 GHz.
	if d := m.Execute(2.4 * SpeedPerGHz / 2); d != 500*time.Millisecond {
		t.Fatalf("pre-cap beat took %v, want 500ms at 2.4 GHz", d)
	}
	if m.State() != 0 {
		t.Fatalf("cap landed early: state %d before its scheduled time", m.State())
	}
	// An idle spanning the landing time is split: [0.5s, 1s) at 2.4 GHz,
	// [1s, 2s) at 1.6 GHz. With co-located interference the idle power
	// differs across the boundary, so the meter exposes the split.
	m.SetInterference(0.5)
	m.Idle(1500 * time.Millisecond)
	pm := DefaultPowerModel()
	wantJ := pm.Power(2.4, 1)*0.5 + pm.Power(2.4, 0.5)*0.5 + pm.Power(1.6, 0.5)*1.0
	if got := m.Meter().Energy(); math.Abs(got-wantJ) > 0.01 {
		t.Fatalf("energy with mid-idle cap = %v J, want %v J", got, wantJ)
	}
	if m.State() != lowest {
		t.Fatalf("state = %d after landing time, want %d", m.State(), lowest)
	}
	// Work after the landing time runs at the capped frequency.
	m.SetInterference(0)
	if d := m.Execute(1.6 * SpeedPerGHz); d != time.Second {
		t.Fatalf("post-cap beat took %v, want 1s at 1.6 GHz", d)
	}
}

// TestSetStateAtOverrides pins the replacement rules: a later SetStateAt
// replaces a pending one, an explicit SetState cancels it, and a landing
// time in the past applies immediately.
func TestSetStateAtOverrides(t *testing.T) {
	m := newTestMachine(t)
	if err := m.SetStateAt(6, time.Unix(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStateAt(3, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	m.Idle(2 * time.Second)
	if m.State() != 3 {
		t.Fatalf("state = %d, want 3: second schedule should replace the first", m.State())
	}
	m.Idle(4 * time.Second) // past the first (replaced) landing time
	if m.State() != 3 {
		t.Fatalf("state = %d, want 3: replaced schedule must not land", m.State())
	}
	if err := m.SetStateAt(6, time.Unix(100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(1); err != nil {
		t.Fatal(err)
	}
	m.Idle(200 * time.Second)
	if m.State() != 1 {
		t.Fatalf("state = %d, want 1: SetState should cancel the pending schedule", m.State())
	}
	// A landing time already in the past applies immediately.
	if err := m.SetStateAt(2, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if m.State() != 2 {
		t.Fatalf("state = %d, want 2: past landing time should apply now", m.State())
	}
	if err := m.SetStateAt(99, time.Unix(0, 0)); err == nil {
		t.Fatal("want error for out-of-range scheduled state")
	}
}
