package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

// Property: the meter conserves energy — total joules equal the sum over
// completed samples plus the open window, for any interleaving of
// executions, idles and frequency changes.
func TestMeterEnergyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMachine(Config{Clock: clock.NewVirtual(time.Unix(0, 0))})
		if err != nil {
			return false
		}
		type segment struct {
			busy  bool
			secs  float64
			state int
		}
		var segs []segment
		for i := 0; i < 20; i++ {
			segs = append(segs, segment{
				busy:  rng.Intn(2) == 0,
				secs:  0.05 + rng.Float64()*1.5,
				state: rng.Intn(len(Frequencies)),
			})
		}
		var wantEnergy float64
		pm := DefaultPowerModel()
		for _, sg := range segs {
			if err := m.SetState(sg.state); err != nil {
				return false
			}
			if sg.busy {
				m.Execute(sg.secs * m.Speed())
				wantEnergy += pm.Power(Frequencies[sg.state], 1) * sg.secs
			} else {
				m.Idle(time.Duration(sg.secs * float64(time.Second)))
				wantEnergy += pm.Power(Frequencies[sg.state], 0) * sg.secs
			}
		}
		got := m.Meter().Energy()
		// Nanosecond duration quantization accumulates tiny error.
		return math.Abs(got-wantEnergy)/wantEnergy < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean power always lies between idle and peak power.
func TestMeanPowerBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMachine(Config{Clock: clock.NewVirtual(time.Unix(0, 0))})
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			if rng.Intn(2) == 0 {
				m.Execute(rng.Float64() * m.Speed())
			} else {
				m.Idle(time.Duration(rng.Float64() * float64(time.Second)))
			}
		}
		pm := DefaultPowerModel()
		mp := m.Meter().MeanPower()
		return mp >= pm.Idle-1e-9 && mp <= pm.Power(2.4, 1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: execution time is inversely proportional to frequency for
// equal work, across all state pairs.
func TestFrequencyProportionalityProperty(t *testing.T) {
	cost := 3.7e8
	var durations []float64
	for state := range Frequencies {
		m, err := NewMachine(Config{Clock: clock.NewVirtual(time.Unix(0, 0))})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetState(state); err != nil {
			t.Fatal(err)
		}
		durations = append(durations, m.Execute(cost).Seconds())
	}
	for i := range Frequencies {
		for j := range Frequencies {
			want := Frequencies[j] / Frequencies[i]
			got := durations[i] / durations[j]
			if math.Abs(got-want)/want > 1e-6 {
				t.Fatalf("duration ratio %d/%d = %v, want %v", i, j, got, want)
			}
		}
	}
}
