// Package plot is a dependency-free SVG chart emitter for the repo's
// CLI and CI tooling: replay timelines (cmd/fleet -plot) and benchmark
// trend figures (cmd/benchplot) render through it, so figures attach to
// CI runs without pulling a plotting library into the module.
//
// The model is deliberately small: a figure is a titled column of
// panels sharing one width; each panel is either a line panel (one or
// more series over a shared integer x-axis, each autoscaled to the
// panel's value range) or a bar panel (one labeled value per row,
// lengths proportional to the panel maximum, exact values printed at
// the bar ends so linear scaling cannot hide a reading).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline in a line panel: y values over x = 0..n-1.
type Series struct {
	Name   string
	Values []float64
}

// Panel is one chart row of a figure. Leave Bars nil for a line panel;
// a non-nil Bars (with matching Labels) renders horizontal bars and
// ignores Series.
type Panel struct {
	Title  string
	Unit   string // y-axis unit label, e.g. "W", "s", "ns/op"
	Series []Series
	Labels []string
	Bars   []float64
}

// Geometry shared by every figure (pixels).
const (
	figWidth    = 860
	panelHeight = 150
	marginLeft  = 64
	marginRight = 16
	panelTop    = 28 // per-panel title strip
	panelGap    = 18
	titleStrip  = 30 // figure title strip
	barRow      = 22
)

// seriesPalette cycles for line series within a panel.
var seriesPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// WriteSVG renders the figure as a standalone SVG document.
func WriteSVG(w io.Writer, title string, panels []Panel) error {
	height := titleStrip
	for _, p := range panels {
		height += panelHeightOf(p) + panelGap
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		figWidth, height, figWidth, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n", marginLeft, escape(title))
	y := titleStrip
	for _, p := range panels {
		renderPanel(&b, p, y)
		y += panelHeightOf(p) + panelGap
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// panelHeightOf sizes bar panels by row count; line panels are fixed.
func panelHeightOf(p Panel) int {
	if p.Bars != nil {
		return panelTop + barRow*len(p.Bars) + 8
	}
	return panelTop + panelHeight
}

func renderPanel(b *strings.Builder, p Panel, top int) {
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" font-weight="bold">%s</text>`+"\n",
		marginLeft, top+14, escape(p.Title))
	if p.Bars != nil {
		renderBars(b, p, top+panelTop)
		return
	}
	renderLines(b, p, top+panelTop)
}

// renderLines draws the panel frame, min/max y labels, and one
// polyline per series with a right-edge legend.
func renderLines(b *strings.Builder, p Panel, top int) {
	plotW := figWidth - marginLeft - marginRight
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range p.Series {
		for _, v := range s.Values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="#888">(no data)</text>`+"\n", marginLeft, top+20)
		return
	}
	if lo > 0 && lo < 0.25*hi {
		lo = 0 // anchor near-zero ranges at zero instead of a sliver
	}
	if hi == lo {
		hi = lo + 1
	}
	xAt := func(i int) float64 {
		if n == 1 {
			return float64(marginLeft)
		}
		return float64(marginLeft) + float64(i)/float64(n-1)*float64(plotW)
	}
	yAt := func(v float64) float64 {
		return float64(top) + (1-(v-lo)/(hi-lo))*float64(panelHeight-10) + 5
	}
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#ccc"/>`+"\n",
		marginLeft, top, plotW, panelHeight)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="#555">%s</text>`+"\n",
		marginLeft-6, top+10, escape(fmtVal(hi)+p.Unit))
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="#555">%s</text>`+"\n",
		marginLeft-6, top+panelHeight, escape(fmtVal(lo)+p.Unit))
	for si, s := range p.Series {
		color := seriesPalette[si%len(seriesPalette)]
		var pts strings.Builder
		for i, v := range s.Values {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", xAt(i), yAt(v))
		}
		if len(s.Values) == 1 {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", xAt(0), yAt(s.Values[0]), color)
		} else {
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", pts.String(), color)
		}
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="%s">%s</text>`+"\n",
			figWidth-marginRight-4, top+12+12*si, color, escape(s.Name))
	}
}

// renderBars draws horizontal bars scaled to the panel maximum, each
// labeled on the left and annotated with its exact value.
func renderBars(b *strings.Builder, p Panel, top int) {
	const labelW = 330
	plotW := figWidth - marginLeft - marginRight - labelW
	hi := 0.0
	for _, v := range p.Bars {
		hi = math.Max(hi, v)
	}
	if hi == 0 {
		hi = 1
	}
	for i, v := range p.Bars {
		y := top + i*barRow
		label := ""
		if i < len(p.Labels) {
			label = p.Labels[i]
		}
		width := v / hi * float64(plotW)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="10" text-anchor="end" fill="#333">%s</text>`+"\n",
			marginLeft+labelW-8, y+14, escape(label))
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#1f77b4"/>`+"\n",
			marginLeft+labelW, y+4, width, barRow-8)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="10" fill="#333">%s</text>`+"\n",
			float64(marginLeft+labelW)+width+4, y+14, escape(fmtVal(v)+p.Unit))
	}
}

// fmtVal prints a value compactly: SI-style thousands grouping for
// large magnitudes, trimmed decimals for small ones.
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return trimZero(fmt.Sprintf("%.2fG", v/1e9))
	case av >= 1e6:
		return trimZero(fmt.Sprintf("%.2fM", v/1e6))
	case av >= 1e4:
		return trimZero(fmt.Sprintf("%.1fk", v/1e3))
	case av >= 10 || v == math.Trunc(v):
		return trimZero(fmt.Sprintf("%.1f", v))
	default:
		return trimZero(fmt.Sprintf("%.3f", v))
	}
}

// trimZero drops a trailing ".0"/".00" fraction, keeping any suffix.
func trimZero(s string) string {
	suffix := ""
	if n := len(s); n > 0 && (s[n-1] == 'G' || s[n-1] == 'M' || s[n-1] == 'k') {
		suffix, s = s[n-1:], s[:n-1]
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s = strings.TrimRight(strings.TrimRight(s, "0"), ".")
	}
	return s + suffix
}

// escape sanitizes text nodes (labels come from benchmark names and
// user-provided scenario names).
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
