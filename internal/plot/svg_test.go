package plot

import (
	"strings"
	"testing"
)

func TestWriteSVGLinePanel(t *testing.T) {
	var b strings.Builder
	err := WriteSVG(&b, "fleet replay", []Panel{
		{Title: "offered rate", Unit: "req/s", Series: []Series{
			{Name: "rate", Values: []float64{10, 20, 15, 40}},
			{Name: "completions", Values: []float64{9, 19, 16, 38}},
		}},
	})
	if err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	svg := b.String()
	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatalf("missing svg root element:\n%s", svg[:120])
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("unterminated svg document")
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("want 2 polylines (one per series), got %d", got)
	}
	for _, want := range []string{"fleet replay", "offered rate", ">rate<", ">completions<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestWriteSVGBarPanel(t *testing.T) {
	var b strings.Builder
	err := WriteSVG(&b, "bench", []Panel{
		{Title: "allocs/op", Unit: "", Labels: []string{"hosts=128", "hosts=1024"}, Bars: []float64{139, 1127}},
	})
	if err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	svg := b.String()
	if got := strings.Count(svg, "<rect"); got < 3 { // background + 2 bars
		t.Fatalf("want background plus one rect per bar, got %d rects", got)
	}
	// Exact values must be annotated so linear bar scale can't hide them.
	for _, want := range []string{"hosts=128", "hosts=1024", ">139<", ">1127<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	var b strings.Builder
	err := WriteSVG(&b, `a<b&"c"`, []Panel{
		{Title: "x>y", Labels: []string{"<script>"}, Bars: []float64{1}},
	})
	if err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	svg := b.String()
	for _, raw := range []string{"a<b", "<script>", "x>y"} {
		if strings.Contains(svg, raw) {
			t.Errorf("unescaped %q leaked into svg", raw)
		}
	}
	for _, esc := range []string{"a&lt;b&amp;&quot;c&quot;", "&lt;script&gt;", "x&gt;y"} {
		if !strings.Contains(svg, esc) {
			t.Errorf("svg missing escaped form %q", esc)
		}
	}
}

func TestWriteSVGEmptyPanel(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, "empty", []Panel{{Title: "nothing"}}); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Fatal("empty line panel should render a no-data marker")
	}
}

func TestFmtVal(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{0.125, "0.125"},
		{42.5, "42.5"},
		{16028577, "16.03M"},
		{23296, "23.3k"},
		{2.5e9, "2.5G"},
	}
	for _, c := range cases {
		if got := fmtVal(c.in); got != c.want {
			t.Errorf("fmtVal(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
