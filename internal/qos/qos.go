// Package qos implements the quality-of-service metrics of the PowerDial
// paper (Sec. 2.2 and Sec. 4): the distortion metric of Eq. 1 over
// application-specific output abstractions, the F-measure / precision /
// recall metrics used for swish++, and the PSNR helper used by x264.
//
// Throughout, a QoS *loss* of zero is optimal and larger values are worse,
// exactly as in the paper.
package qos

import (
	"errors"
	"fmt"
	"math"
)

// Abstraction is an application-specific output abstraction: the numbers
// o_1..o_m that the user-provided abstraction function extracts from a
// program output (Sec. 2.2).
type Abstraction []float64

// Distortion computes the QoS loss of Eq. 1:
//
//	qos = (1/m) * sum_i w_i * |(o_i - ô_i) / o_i|
//
// between the baseline abstraction o and the observed abstraction ô, using
// unit weights. Components of the baseline that are exactly zero are
// compared absolutely (|ô_i|) to avoid division by zero; the paper's
// benchmarks have non-zero baselines so this is a boundary-case extension.
func Distortion(baseline, observed Abstraction) (float64, error) {
	return WeightedDistortion(baseline, observed, nil)
}

// WeightedDistortion is Distortion with optional per-component weights w_i
// ("each weight w_i is optionally provided by the user to capture the
// relative importance of the i-th component"). A nil weights slice means
// unit weights. Weights are normalized by m (the component count), as in
// Eq. 1.
func WeightedDistortion(baseline, observed Abstraction, weights []float64) (float64, error) {
	if len(baseline) != len(observed) {
		return 0, fmt.Errorf("qos: abstraction size mismatch: baseline %d, observed %d", len(baseline), len(observed))
	}
	if len(baseline) == 0 {
		return 0, errors.New("qos: empty output abstraction")
	}
	if weights != nil && len(weights) != len(baseline) {
		return 0, fmt.Errorf("qos: weight count %d does not match abstraction size %d", len(weights), len(baseline))
	}
	var sum float64
	for i := range baseline {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		var term float64
		if baseline[i] == 0 {
			term = math.Abs(observed[i])
		} else {
			term = math.Abs((baseline[i] - observed[i]) / baseline[i])
		}
		sum += w * term
	}
	return sum / float64(len(baseline)), nil
}

// MagnitudeWeights returns weights proportional to the magnitude of each
// baseline component, normalized so they sum to m (the component count).
// This realizes bodytrack's QoS metric: "the weight of each vector
// component is proportional to its magnitude" (Sec. 4.3), so that larger
// body parts influence the metric more.
func MagnitudeWeights(baseline Abstraction) []float64 {
	w := make([]float64, len(baseline))
	var total float64
	for i, b := range baseline {
		w[i] = math.Abs(b)
		total += w[i]
	}
	if total == 0 {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	scale := float64(len(baseline)) / total
	for i := range w {
		w[i] *= scale
	}
	return w
}

// RetrievalResult captures one query's returned and relevant document sets
// for information-retrieval QoS (swish++, Sec. 4.4).
type RetrievalResult struct {
	// Returned is the ranked list of returned document IDs.
	Returned []int
	// Relevant is the set of documents relevant to the query.
	Relevant map[int]bool
}

// Precision returns precision at cutoff n (P@n in the paper's notation):
// |top-n returned ∩ relevant| / n. When fewer than n documents are
// returned the missing slots count as misses — this is why, as the paper
// notes, "precision is not affected by the change in dynamic knob unless
// the P@N is less than the current knob setting". n <= 0 computes
// uncapped precision |returned ∩ relevant| / |returned| (0 when nothing
// is returned).
func (r RetrievalResult) Precision(n int) float64 {
	ret := r.Returned
	denom := float64(n)
	if n <= 0 {
		if len(ret) == 0 {
			return 0
		}
		denom = float64(len(ret))
	} else if n < len(ret) {
		ret = ret[:n]
	}
	hits := 0
	for _, d := range ret {
		if r.Relevant[d] {
			hits++
		}
	}
	return float64(hits) / denom
}

// Recall returns |returned ∩ relevant| / |relevant| over the top n returned
// documents. n <= 0 uses the full returned list. If there are no relevant
// documents, recall is 1 (nothing to find).
func (r RetrievalResult) Recall(n int) float64 {
	if len(r.Relevant) == 0 {
		return 1
	}
	ret := r.Returned
	if n > 0 && n < len(ret) {
		ret = ret[:n]
	}
	// Count distinct relevant documents: a document returned twice is
	// still found only once, or recall could exceed 1.
	found := make(map[int]bool)
	for _, d := range ret {
		if r.Relevant[d] {
			found[d] = true
		}
	}
	return float64(len(found)) / float64(len(r.Relevant))
}

// FMeasure returns the harmonic mean of precision and recall at cutoff n
// (Sec. 4.4: "F-measure is the harmonic mean of the precision and
// recall"). It is 0 when both are 0.
func (r RetrievalResult) FMeasure(n int) float64 {
	p, rec := r.Precision(n), r.Recall(n)
	if p+rec == 0 {
		return 0
	}
	return 2 * p * rec / (p + rec)
}

// MeanFMeasure averages FMeasure at cutoff n over a batch of queries.
func MeanFMeasure(results []RetrievalResult, n int) float64 {
	if len(results) == 0 {
		return 0
	}
	var s float64
	for _, r := range results {
		s += r.FMeasure(n)
	}
	return s / float64(len(results))
}

// PSNR returns the peak signal-to-noise ratio in dB between two equal-size
// 8-bit sample planes. Identical planes return +Inf.
func PSNR(reference, reconstructed []byte) (float64, error) {
	if len(reference) != len(reconstructed) {
		return 0, fmt.Errorf("qos: plane size mismatch: %d vs %d", len(reference), len(reconstructed))
	}
	if len(reference) == 0 {
		return 0, errors.New("qos: empty planes")
	}
	var se float64
	for i := range reference {
		d := float64(reference[i]) - float64(reconstructed[i])
		se += d * d
	}
	mse := se / float64(len(reference))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}
