package qos

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistortionIdentical(t *testing.T) {
	a := Abstraction{1, 2, 3}
	d, err := Distortion(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("distortion of identical abstractions = %v, want 0", d)
	}
}

func TestDistortionKnownValue(t *testing.T) {
	// Components off by 10% and 20%: mean relative error 15%.
	base := Abstraction{10, 10}
	obs := Abstraction{11, 12}
	d, err := Distortion(base, obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.15) > 1e-12 {
		t.Fatalf("distortion = %v, want 0.15", d)
	}
}

func TestDistortionSignInsensitive(t *testing.T) {
	base := Abstraction{10}
	dUp, _ := Distortion(base, Abstraction{12})
	dDown, _ := Distortion(base, Abstraction{8})
	if dUp != dDown {
		t.Fatalf("distortion should use absolute relative error: %v vs %v", dUp, dDown)
	}
}

func TestDistortionZeroBaselineComponent(t *testing.T) {
	d, err := Distortion(Abstraction{0, 10}, Abstraction{0.5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("zero-baseline component handling: got %v, want 0.25", d)
	}
}

func TestDistortionErrors(t *testing.T) {
	if _, err := Distortion(Abstraction{1}, Abstraction{1, 2}); err == nil {
		t.Error("want size-mismatch error")
	}
	if _, err := Distortion(Abstraction{}, Abstraction{}); err == nil {
		t.Error("want empty-abstraction error")
	}
	if _, err := WeightedDistortion(Abstraction{1, 2}, Abstraction{1, 2}, []float64{1}); err == nil {
		t.Error("want weight-mismatch error")
	}
}

func TestWeightedDistortion(t *testing.T) {
	base := Abstraction{10, 10}
	obs := Abstraction{11, 12} // rel errors 0.1, 0.2
	d, err := WeightedDistortion(base, obs, []float64{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.1) > 1e-12 { // (2*0.1 + 0*0.2)/2
		t.Fatalf("weighted distortion = %v, want 0.1", d)
	}
}

func TestMagnitudeWeights(t *testing.T) {
	w := MagnitudeWeights(Abstraction{1, 3})
	if math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-1.5) > 1e-12 {
		t.Fatalf("weights = %v, want [0.5 1.5]", w)
	}
	// Sum of weights equals component count (Eq. 1 normalization intact).
	if math.Abs(w[0]+w[1]-2) > 1e-12 {
		t.Fatalf("weights should sum to m: %v", w)
	}
	// All-zero baseline falls back to unit weights.
	w = MagnitudeWeights(Abstraction{0, 0, 0})
	for _, x := range w {
		if x != 1 {
			t.Fatalf("zero baseline weights = %v, want all 1", w)
		}
	}
}

// Property: distortion is non-negative and zero iff observed == baseline
// (for strictly positive baselines).
func TestDistortionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		base := make(Abstraction, n)
		obs := make(Abstraction, n)
		same := true
		for i := range base {
			base[i] = 0.5 + rng.Float64()*10
			obs[i] = base[i]
			if rng.Intn(2) == 0 {
				obs[i] += rng.NormFloat64()
				if obs[i] != base[i] {
					same = false
				}
			}
		}
		d, err := Distortion(base, obs)
		if err != nil {
			return false
		}
		if d < 0 {
			return false
		}
		if same != (d == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func retrieval() RetrievalResult {
	return RetrievalResult{
		Returned: []int{1, 2, 3, 4, 5},
		Relevant: map[int]bool{1: true, 2: true, 7: true, 8: true},
	}
}

func TestPrecision(t *testing.T) {
	r := retrieval()
	if got := r.Precision(0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P@all = %v, want 0.4", got)
	}
	if got := r.Precision(2); got != 1 {
		t.Errorf("P@2 = %v, want 1", got)
	}
	// Cutoff beyond the returned count: missing slots are misses.
	if got := r.Precision(10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("P@10 = %v, want 0.2 (2 hits / cutoff 10)", got)
	}
	if got := (RetrievalResult{}).Precision(0); got != 0 {
		t.Errorf("empty returned precision = %v, want 0", got)
	}
}

func TestRecall(t *testing.T) {
	r := retrieval()
	if got := r.Recall(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("R@all = %v, want 0.5", got)
	}
	if got := r.Recall(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("R@2 = %v, want 0.5", got)
	}
	empty := RetrievalResult{Returned: []int{1}}
	if got := empty.Recall(0); got != 1 {
		t.Errorf("recall with no relevant docs = %v, want 1", got)
	}
}

func TestFMeasure(t *testing.T) {
	r := retrieval()
	p, rec := 0.4, 0.5
	want := 2 * p * rec / (p + rec)
	if got := r.FMeasure(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("F = %v, want %v", got, want)
	}
	zero := RetrievalResult{Returned: []int{9}, Relevant: map[int]bool{1: true}}
	if got := zero.FMeasure(0); got != 0 {
		t.Errorf("F with no overlap = %v, want 0", got)
	}
}

func TestMeanFMeasure(t *testing.T) {
	rs := []RetrievalResult{retrieval(), retrieval()}
	single := retrieval().FMeasure(0)
	if got := MeanFMeasure(rs, 0); math.Abs(got-single) > 1e-12 {
		t.Errorf("mean F = %v, want %v", got, single)
	}
	if MeanFMeasure(nil, 0) != 0 {
		t.Error("mean F of empty batch should be 0")
	}
}

// Property: F-measure lies in [0,1] and equals 0 only when no relevant
// documents are returned (given a non-empty relevant set).
func TestFMeasureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := RetrievalResult{Relevant: map[int]bool{}}
		for i := 0; i < 1+rng.Intn(10); i++ {
			r.Relevant[rng.Intn(20)] = true
		}
		for i := 0; i < rng.Intn(15); i++ {
			r.Returned = append(r.Returned, rng.Intn(20))
		}
		f := r.FMeasure(0)
		if f < 0 || f > 1 {
			return false
		}
		hit := false
		for _, d := range r.Returned {
			if r.Relevant[d] {
				hit = true
			}
		}
		return hit == (f > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPSNR(t *testing.T) {
	a := []byte{0, 128, 255}
	p, err := PSNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("PSNR of identical planes = %v, want +Inf", p)
	}
	b := []byte{10, 128, 255} // MSE = 100/3
	p, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/(100.0/3))
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", p, want)
	}
}

func TestPSNRErrors(t *testing.T) {
	if _, err := PSNR([]byte{1}, []byte{1, 2}); err == nil {
		t.Error("want size-mismatch error")
	}
	if _, err := PSNR(nil, nil); err == nil {
		t.Error("want empty-plane error")
	}
}
