package serve

import (
	"fmt"
	"time"
)

// Shed reasons returned by Admission.Admit. Empty string means the
// request was admitted.
const (
	// ShedRate is a token-bucket refusal: the group's offered rate
	// exceeds its provisioned requests-per-second and the burst
	// allowance is spent.
	ShedRate = "rate"
	// ShedQueue is a backlog refusal: the group's standing queue
	// already exceeds its per-instance watermark, so queueing this
	// request would only grow an unserviceable backlog.
	ShedQueue = "queue"
	// ShedP95 is a latency refusal: the group's last measured p95 is
	// over its objective while a backlog stands — new work would
	// arrive behind requests already missing the SLO.
	ShedP95 = "p95"
)

// AdmissionConfig is one workload group's admission policy. The zero
// value admits everything — each mechanism arms only when its field is
// set.
type AdmissionConfig struct {
	// Rate is the group's token-bucket refill in requests per second
	// (<= 0 disables rate limiting).
	Rate float64
	// Burst is the bucket capacity in requests (default max(Rate, 1)):
	// how far above the sustained rate a momentary spike may go.
	Burst float64
	// MaxQueuePerInstance sheds when the group's standing backlog
	// reaches this many requests per accepting instance (<= 0
	// disables). With no accepting instances the threshold applies to
	// the backlog as a whole.
	MaxQueuePerInstance int
	// SLOP95 sheds while the group's last measured p95 exceeds this
	// many seconds and a backlog stands (<= 0 disables).
	SLOP95 float64
}

// GroupSignals is what admission control sees of one group's state:
// the previous round's accepting count, standing queue, and measured
// p95, refreshed by the serving loop after every Step.
type GroupSignals struct {
	Accepting  int
	QueueDepth int
	P95        float64
}

// bucket is one group's token-bucket state. Tokens refill lazily from
// the receive timestamps of the requests themselves, so admission is a
// pure function of the request stream — deterministic under a virtual
// clock.
type bucket struct {
	tokens float64
	last   time.Time
	primed bool
}

// Admission is the serving mode's per-group admission controller:
// token-bucket rate limiting plus queue-depth and p95-breach load
// shedding. Decisions are made at the serving loop only — the type is
// not safe for concurrent use, and does not need to be.
type Admission struct {
	cfgs    []AdmissionConfig
	buckets []bucket
}

// NewAdmission builds an admission controller with one config per
// workload group, in group-index order.
func NewAdmission(cfgs []AdmissionConfig) (*Admission, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("serve: admission needs at least one group config")
	}
	a := &Admission{
		cfgs:    append([]AdmissionConfig(nil), cfgs...),
		buckets: make([]bucket, len(cfgs)),
	}
	for i := range a.cfgs {
		if a.cfgs[i].Rate > 0 && a.cfgs[i].Burst <= 0 {
			a.cfgs[i].Burst = a.cfgs[i].Rate
			if a.cfgs[i].Burst < 1 {
				a.cfgs[i].Burst = 1
			}
		}
	}
	return a, nil
}

// Admit decides one request received at instant at for the given
// group, against the group's last-round signals. It returns "" to
// admit, or the shed reason. Backlog and latency breaches are checked
// before the bucket, so shed requests do not consume tokens.
func (a *Admission) Admit(group int, at time.Time, sig GroupSignals) string {
	if group < 0 || group >= len(a.cfgs) {
		return ShedQueue
	}
	cfg := &a.cfgs[group]
	if cfg.MaxQueuePerInstance > 0 {
		insts := sig.Accepting
		if insts < 1 {
			insts = 1
		}
		if sig.QueueDepth >= cfg.MaxQueuePerInstance*insts {
			return ShedQueue
		}
	}
	if cfg.SLOP95 > 0 && sig.P95 > cfg.SLOP95 && sig.QueueDepth > 0 {
		return ShedP95
	}
	if cfg.Rate > 0 {
		b := &a.buckets[group]
		if !b.primed {
			b.tokens, b.last, b.primed = cfg.Burst, at, true
		}
		if el := at.Sub(b.last).Seconds(); el > 0 {
			b.tokens += el * cfg.Rate
			if b.tokens > cfg.Burst {
				b.tokens = cfg.Burst
			}
			b.last = at
		}
		if b.tokens < 1 {
			return ShedRate
		}
		b.tokens--
	}
	return ""
}
