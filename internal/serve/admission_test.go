package serve

import (
	"testing"
	"time"
)

func at(s float64) time.Time {
	return time.Unix(0, 0).Add(time.Duration(s * float64(time.Second)))
}

// TestTokenBucketRefillAndBurst tables the bucket edge cases: burst
// consumption, fractional refill, the burst cap after long idles, and
// the primed-at-first-sight initialization.
func TestTokenBucketRefillAndBurst(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  AdmissionConfig
		reqs []struct {
			at   float64
			want string
		}
	}{
		{
			name: "burst spends then refills at rate",
			cfg:  AdmissionConfig{Rate: 2, Burst: 2},
			reqs: []struct {
				at   float64
				want string
			}{
				{0, ""},          // token 2 -> 1
				{0, ""},          // 1 -> 0
				{0, ShedRate},    // spent
				{0.25, ShedRate}, // refill 0.5: still < 1
				{0.5, ""},        // refill to 1 -> spend
				{0.5, ShedRate},
			},
		},
		{
			name: "burst caps accumulation over long idle",
			cfg:  AdmissionConfig{Rate: 10, Burst: 3},
			reqs: []struct {
				at   float64
				want string
			}{
				{100, ""}, // hours idle still yield only Burst tokens
				{100, ""},
				{100, ""},
				{100, ShedRate},
			},
		},
		{
			name: "sub-unit rate needs multiple seconds per token",
			cfg:  AdmissionConfig{Rate: 0.5, Burst: 1},
			reqs: []struct {
				at   float64
				want string
			}{
				{0, ""},
				{1, ShedRate}, // 0.5 tokens
				{2, ""},       // 1.0
				{3, ShedRate},
			},
		},
		{
			name: "default burst is rate",
			cfg:  AdmissionConfig{Rate: 3},
			reqs: []struct {
				at   float64
				want string
			}{
				{0, ""}, {0, ""}, {0, ""}, {0, ShedRate},
			},
		},
		{
			name: "default burst floors at one token",
			cfg:  AdmissionConfig{Rate: 0.25},
			reqs: []struct {
				at   float64
				want string
			}{
				{0, ""}, {0, ShedRate},
			},
		},
		{
			name: "zero rate admits everything",
			cfg:  AdmissionConfig{},
			reqs: []struct {
				at   float64
				want string
			}{
				{0, ""}, {0, ""}, {0, ""}, {0, ""},
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			adm, err := NewAdmission([]AdmissionConfig{tc.cfg})
			if err != nil {
				t.Fatal(err)
			}
			for i, req := range tc.reqs {
				if got := adm.Admit(0, at(req.at), GroupSignals{}); got != req.want {
					t.Errorf("request %d at t=%.2fs: decision %q, want %q", i, req.at, got, req.want)
				}
			}
		})
	}
}

// TestShedVsQueueAtBreach tables the backlog and p95 shedding paths
// and their interaction with the bucket: refused requests must not
// consume tokens, and a p95 breach sheds only while a backlog stands.
func TestShedVsQueueAtBreach(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  AdmissionConfig
		sig  GroupSignals
		want string
	}{
		{"clean signals admit", AdmissionConfig{MaxQueuePerInstance: 4, SLOP95: 0.6}, GroupSignals{Accepting: 2, QueueDepth: 3, P95: 0.3}, ""},
		{"queue at watermark sheds", AdmissionConfig{MaxQueuePerInstance: 4}, GroupSignals{Accepting: 2, QueueDepth: 8}, ShedQueue},
		{"queue under watermark admits", AdmissionConfig{MaxQueuePerInstance: 4}, GroupSignals{Accepting: 2, QueueDepth: 7}, ""},
		{"no accepting instances: watermark applies to the backlog", AdmissionConfig{MaxQueuePerInstance: 4}, GroupSignals{Accepting: 0, QueueDepth: 4}, ShedQueue},
		{"p95 breach with backlog sheds", AdmissionConfig{SLOP95: 0.6}, GroupSignals{Accepting: 2, QueueDepth: 1, P95: 0.7}, ShedP95},
		{"p95 breach with empty queue admits", AdmissionConfig{SLOP95: 0.6}, GroupSignals{Accepting: 2, QueueDepth: 0, P95: 0.7}, ""},
		{"p95 at objective admits", AdmissionConfig{SLOP95: 0.6}, GroupSignals{Accepting: 2, QueueDepth: 1, P95: 0.6}, ""},
		{"queue breach outranks p95 breach", AdmissionConfig{MaxQueuePerInstance: 2, SLOP95: 0.6}, GroupSignals{Accepting: 1, QueueDepth: 5, P95: 0.9}, ShedQueue},
		{"unconfigured admits under any signals", AdmissionConfig{}, GroupSignals{Accepting: 0, QueueDepth: 1 << 20, P95: 99}, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			adm, err := NewAdmission([]AdmissionConfig{tc.cfg})
			if err != nil {
				t.Fatal(err)
			}
			if got := adm.Admit(0, at(0), tc.sig); got != tc.want {
				t.Errorf("decision %q, want %q", got, tc.want)
			}
		})
	}
}

// TestShedDoesNotConsumeTokens pins the check order: a queue-shed
// request leaves the bucket untouched, so the next clean request still
// finds its token.
func TestShedDoesNotConsumeTokens(t *testing.T) {
	adm, err := NewAdmission([]AdmissionConfig{{Rate: 1, Burst: 1, MaxQueuePerInstance: 2}})
	if err != nil {
		t.Fatal(err)
	}
	breach := GroupSignals{Accepting: 1, QueueDepth: 5}
	clean := GroupSignals{Accepting: 1, QueueDepth: 0}
	for i := 0; i < 3; i++ {
		if got := adm.Admit(0, at(0), breach); got != ShedQueue {
			t.Fatalf("breach request %d: decision %q, want %q", i, got, ShedQueue)
		}
	}
	if got := adm.Admit(0, at(0), clean); got != "" {
		t.Errorf("clean request after sheds: decision %q, want admit (token unspent)", got)
	}
	if got := adm.Admit(0, at(0), clean); got != ShedRate {
		t.Errorf("second clean request: decision %q, want %q (token now spent)", got, ShedRate)
	}
}

// TestAdmissionGroupsIndependent checks per-group isolation: group 1's
// spent bucket must not shed group 0.
func TestAdmissionGroupsIndependent(t *testing.T) {
	adm, err := NewAdmission([]AdmissionConfig{{Rate: 100}, {Rate: 1, Burst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := adm.Admit(1, at(0), GroupSignals{}); got != "" {
		t.Fatalf("group 1 first request: %q, want admit", got)
	}
	if got := adm.Admit(1, at(0), GroupSignals{}); got != ShedRate {
		t.Fatalf("group 1 second request: %q, want %q", got, ShedRate)
	}
	if got := adm.Admit(0, at(0), GroupSignals{}); got != "" {
		t.Errorf("group 0 request: %q, want admit (independent bucket)", got)
	}
	if got := adm.Admit(99, at(0), GroupSignals{}); got != ShedQueue {
		t.Errorf("out-of-range group: %q, want a shed decision", got)
	}
}
