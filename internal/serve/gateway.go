package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// gwReq is one request as received at the gateway: which workload
// group it belongs to, how many stream iterations it asks for, and the
// instant the gateway stamped it with on the serving clock.
type gwReq struct {
	group int
	iters int
	at    time.Time
}

// Gateway is the fleet's ingress: a bounded in-process channel that
// producers (the HTTP handler, a client swarm, tests) submit requests
// into from any goroutine, and the serving loop drains once per round.
// Submission never blocks — a full intake buffer refuses the request
// and counts it as overflow, so a stalled serving loop back-pressures
// producers instead of growing memory without bound.
type Gateway struct {
	clk       clock.Clock
	ch        chan gwReq
	submitted atomic.Int64
	overflow  atomic.Int64
}

// NewGateway builds a gateway stamping receive instants from clk, with
// an intake buffer of buf requests (default 1024).
func NewGateway(clk clock.Clock, buf int) *Gateway {
	if buf <= 0 {
		buf = 1024
	}
	return &Gateway{clk: clk, ch: make(chan gwReq, buf)}
}

// Submit offers one request for the given workload group, sized in
// stream iterations (0 = a whole stream), stamped with the gateway
// clock's current instant. It never blocks: false means the intake
// buffer was full and the request was refused at the door (counted in
// Overflow, not Shed — it never reached admission control). Safe for
// concurrent use.
//
//fleetvet:noalloc
func (g *Gateway) Submit(group, iters int) bool {
	g.submitted.Add(1)
	select {
	case g.ch <- gwReq{group: group, iters: iters, at: g.clk.Now()}:
		return true
	default:
		g.overflow.Add(1)
		return false
	}
}

// drain moves every buffered request into dst without blocking,
// returning the extended slice. The serving loop calls it once per
// round with a reused scratch slice.
//
//fleetvet:noalloc
func (g *Gateway) drain(dst []gwReq) []gwReq {
	for {
		select {
		case req := <-g.ch:
			dst = append(dst, req)
		default:
			return dst
		}
	}
}

// Submitted returns how many requests producers have offered, counting
// refused ones.
func (g *Gateway) Submitted() int64 { return g.submitted.Load() }

// Overflow returns how many submissions the full intake buffer
// refused.
func (g *Gateway) Overflow() int64 { return g.overflow.Load() }
