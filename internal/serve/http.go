package serve

import (
	"encoding/json"
	"net/http"
)

// Stats is the serving loop's counter snapshot, as served by the
// /stats endpoint.
type Stats struct {
	// Round counts served control quanta.
	Round int64 `json:"round"`
	// Submitted and Overflow are the gateway's intake counters.
	Submitted int64 `json:"submitted"`
	Overflow  int64 `json:"overflow"`
	// Accepted, Shed, and Invalid are admission outcomes; Completions
	// counts requests served to completion.
	Accepted    int64 `json:"accepted"`
	Shed        int64 `json:"shed"`
	Invalid     int64 `json:"invalid"`
	Completions int64 `json:"completions"`
}

// Stats snapshots the serving counters. Counters are read
// individually, so a snapshot taken mid-round may be transiently
// inconsistent (e.g. submitted not yet drained) but never torn.
func (s *Server) Stats() Stats {
	return Stats{
		Round:       s.Round(),
		Submitted:   s.cfg.Gateway.Submitted(),
		Overflow:    s.cfg.Gateway.Overflow(),
		Accepted:    s.Accepted(),
		Shed:        s.Shed(),
		Invalid:     s.Invalid(),
		Completions: s.Completions(),
	}
}

// Handler exposes the gateway over HTTP:
//
//	POST /requests?group=<name>[&iters=<n>]
//	    202 Accepted  — queued for the next round's admission decision
//	    429 Too Many Requests — intake buffer full, request refused
//	    404 Not Found — unknown group name
//	GET /stats
//	    200 with the Stats JSON
//
// defaultIters sizes requests that do not pass iters. The handler only
// touches the gateway's concurrency-safe surface and the atomic
// counters, so it serves from net/http's goroutines while the loop
// runs.
func (s *Server) Handler(defaultIters int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/requests", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		name := q.Get("group")
		gi, ok := s.groupIdx[name]
		if !ok {
			http.Error(w, "unknown group "+name, http.StatusNotFound)
			return
		}
		iters := defaultIters
		if v := q.Get("iters"); v != "" {
			n := 0
			for _, c := range v {
				if c < '0' || c > '9' {
					http.Error(w, "bad iters", http.StatusBadRequest)
					return
				}
				n = n*10 + int(c-'0')
			}
			iters = n
		}
		if !s.cfg.Gateway.Submit(gi, iters) {
			http.Error(w, "intake full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
