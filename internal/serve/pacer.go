package serve

import (
	"time"

	"repro/internal/clock"
)

// Pacer ties the fleet's virtual timeline to a wall clock. It anchors
// the virtual epoch (time.Unix(0, 0), the instant the fleet's round 0
// opens) to the clock instant it was constructed at; from then on,
// round r of virtual time corresponds to the wall window
// [anchor + r·quantum, anchor + (r+1)·quantum).
//
// The serving loop runs one quantum behind the wall: WaitRound(r)
// sleeps until round r's wall window has fully elapsed, the gateway is
// drained — every request received during the window now carries its
// true receive instant — and the engine then simulates the whole round
// in one burst, far faster than the wall time it covers. The slack
// between simulation cost and quantum length is the twin's budget.
//
// All waiting goes through the injected clock.Waiter: under
// clock.Real the pacer paces, under clock.Virtual it advances time
// instantly and the loop is deterministic.
type Pacer struct {
	clk     clock.Waiter
	anchor  time.Time
	epoch   time.Time
	quantum time.Duration
}

// NewPacer anchors a pacer at clk's current instant.
func NewPacer(clk clock.Waiter, quantum time.Duration) *Pacer {
	return &Pacer{
		clk:     clk,
		anchor:  clk.Now(),
		epoch:   time.Unix(0, 0),
		quantum: quantum,
	}
}

// WaitRound blocks until round r's wall window has fully elapsed —
// i.e. until anchor + (r+1)·quantum. Returns immediately if that
// instant has already passed (the loop is running late; the engine
// catches up by simulating back-to-back rounds).
func (p *Pacer) WaitRound(r int) {
	target := p.anchor.Add(time.Duration(r+1) * p.quantum)
	p.clk.Sleep(target.Sub(p.clk.Now()))
}

// Virtual maps a wall instant (as stamped by the pacer's clock) to its
// virtual instant: the same offset from the virtual epoch as from the
// wall anchor. Instants before the anchor clamp to the epoch.
func (p *Pacer) Virtual(wall time.Time) time.Time {
	d := wall.Sub(p.anchor)
	if d < 0 {
		d = 0
	}
	return p.epoch.Add(d)
}
