package serve

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// TestPacerRoundWindows pins the wall-window arithmetic: WaitRound(r)
// sleeps to anchor + (r+1)·quantum exactly, and returns immediately
// when the loop is already late.
func TestPacerRoundWindows(t *testing.T) {
	anchor := time.Unix(500, 250_000_000)
	clk := clock.NewVirtual(anchor)
	p := NewPacer(clk, time.Second)

	p.WaitRound(0)
	if want := anchor.Add(time.Second); !clk.Now().Equal(want) {
		t.Errorf("after WaitRound(0) clock at %v, want %v", clk.Now(), want)
	}
	p.WaitRound(1)
	if want := anchor.Add(2 * time.Second); !clk.Now().Equal(want) {
		t.Errorf("after WaitRound(1) clock at %v, want %v", clk.Now(), want)
	}
	// Running late: round 1's window already elapsed, no sleep.
	p.WaitRound(0)
	if want := anchor.Add(2 * time.Second); !clk.Now().Equal(want) {
		t.Errorf("late WaitRound(0) moved the clock to %v, want unchanged %v", clk.Now(), want)
	}
}

// TestPacerVirtualMapping pins the wall-to-virtual translation: same
// offset from the epoch as from the anchor, with pre-anchor instants
// clamped to the epoch.
func TestPacerVirtualMapping(t *testing.T) {
	anchor := time.Unix(1_000_000, 123)
	clk := clock.NewVirtual(anchor)
	p := NewPacer(clk, time.Second)
	epoch := time.Unix(0, 0)

	for _, tc := range []struct {
		offset time.Duration
		want   time.Time
	}{
		{0, epoch},
		{300 * time.Millisecond, epoch.Add(300 * time.Millisecond)},
		{2500 * time.Millisecond, epoch.Add(2500 * time.Millisecond)},
		{-time.Hour, epoch}, // before the anchor: clamp
	} {
		if got := p.Virtual(anchor.Add(tc.offset)); !got.Equal(tc.want) {
			t.Errorf("Virtual(anchor%+v) = %v, want %v", tc.offset, got, tc.want)
		}
	}
}
