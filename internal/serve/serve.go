// Package serve is the wall-clock serving mode: the fleet run as a
// live power-capped server. A Gateway receives requests in real time,
// per-group Admission decides accept-or-shed, a Pacer ties the
// deterministic event engine to the wall clock one quantum behind it,
// and a digital Twin replays what-if scenarios faster than real time
// on the virtual engine, feeding its provisioning recommendation
// forward into the autoscaler (TwinScaler).
//
// Every component takes its time source by injection (clock.Waiter),
// so the whole serving loop — pacing, admission, twin — runs
// deterministically on a clock.Virtual under test; only cmd/fleet
// -serve binds clock.Real.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/fleet"
)

// Config assembles a serving loop.
type Config struct {
	// Supervisor is the live fleet, built on the event timeline and
	// not yet stepped or fed by any other driver (required).
	Supervisor *fleet.Supervisor
	// Clock is the serving time source (required): clock.Real{} in
	// cmd/fleet -serve, a *clock.Virtual in tests.
	Clock clock.Waiter
	// Gateway is the ingress the loop drains each round (required; its
	// clock should be this Config's Clock).
	Gateway *Gateway
	// Admission is the per-group accept-or-shed policy (optional; nil
	// admits everything the intake buffer holds).
	Admission *Admission
	// Twin and TwinScaler close the feed-forward loop (both optional,
	// but Twin requires TwinScaler — and the TwinScaler must be the
	// policy attached to the supervisor for the advice to matter).
	Twin       *Twin
	TwinScaler *TwinScaler
	// AsyncTwin runs the twin in its own goroutine, advising from the
	// previous round's snapshot while the wall clock ticks (the real
	// serving deployment). Unset, the twin advises synchronously
	// before every Step — fully deterministic, the test mode.
	AsyncTwin bool
	// Recent is how many trailing rounds of arrival history snapshots
	// carry (default 5).
	Recent int
}

// Server owns the serving loop: one RunRound per control quantum,
// paced against Config.Clock. The loop itself is single-goroutine;
// only the Gateway (and the async twin, which works on snapshots) are
// touched concurrently.
type Server struct {
	cfg     Config
	pacer   *Pacer
	sigs    []GroupSignals
	scratch []gwReq

	accepted    atomic.Int64
	shed        atomic.Int64
	invalid     atomic.Int64
	completions atomic.Int64
	round       atomic.Int64

	groupIdx map[string]int

	snapCh    chan fleet.FleetSnapshot
	advCh     chan int
	twinDone  chan struct{}
	closeOnce sync.Once
}

// New validates cfg, anchors the pacer at the clock's current instant
// (round 0's wall window opens now), and — with AsyncTwin — starts the
// twin goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Supervisor == nil {
		return nil, fmt.Errorf("serve: Config.Supervisor is required")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("serve: Config.Clock is required")
	}
	if cfg.Gateway == nil {
		return nil, fmt.Errorf("serve: Config.Gateway is required")
	}
	if cfg.Supervisor.Round() != 0 {
		return nil, fmt.Errorf("serve: supervisor already at round %d; serving needs a fresh fleet", cfg.Supervisor.Round())
	}
	if cfg.Twin != nil && cfg.TwinScaler == nil {
		return nil, fmt.Errorf("serve: Twin requires a TwinScaler to feed")
	}
	if cfg.Recent <= 0 {
		cfg.Recent = 5
	}
	names := cfg.Supervisor.GroupNames()
	s := &Server{
		cfg:      cfg,
		pacer:    NewPacer(cfg.Clock, cfg.Supervisor.Quantum()),
		sigs:     make([]GroupSignals, len(names)),
		groupIdx: make(map[string]int, len(names)),
	}
	for gi, name := range names {
		s.groupIdx[name] = gi
	}
	if cfg.Twin != nil && cfg.AsyncTwin {
		s.snapCh = make(chan fleet.FleetSnapshot, 1)
		s.advCh = make(chan int, 1)
		s.twinDone = make(chan struct{})
		go s.twinLoop()
	}
	return s, nil
}

// RunRound serves one control quantum: wait out the round's wall
// window, drain the gateway, admit or shed each request at its true
// receive instant, fold the twin's latest advice into the scaler, and
// step the engine through the round in one burst.
func (s *Server) RunRound() error {
	sup := s.cfg.Supervisor
	r := sup.Round()
	s.pacer.WaitRound(r)

	s.scratch = s.cfg.Gateway.drain(s.scratch[:0])
	for _, req := range s.scratch {
		if req.group < 0 || req.group >= len(s.sigs) {
			s.invalid.Add(1)
			continue
		}
		vAt := s.pacer.Virtual(req.at)
		reason := ""
		if s.cfg.Admission != nil {
			reason = s.cfg.Admission.Admit(req.group, req.at, s.sigs[req.group])
		}
		if reason == "" {
			if _, err := sup.InjectArrivalAt(vAt, req.group, req.iters); err != nil {
				return err
			}
			s.accepted.Add(1)
		} else {
			if err := sup.RecordShed(vAt, req.group); err != nil {
				return err
			}
			s.shed.Add(1)
		}
	}

	if s.cfg.Twin != nil {
		if s.cfg.AsyncTwin {
			select {
			case rec := <-s.advCh:
				s.cfg.TwinScaler.SetAdvice(rec)
			default:
			}
		} else {
			rec, err := s.cfg.Twin.Advise(sup.StateSnapshot(s.cfg.Recent))
			if err != nil {
				return err
			}
			s.cfg.TwinScaler.SetAdvice(rec)
		}
	}

	rs, err := sup.Step(nil)
	if err != nil {
		return err
	}
	for gi := range s.sigs {
		g := rs.Groups[gi]
		s.sigs[gi] = GroupSignals{Accepting: g.Accepting, QueueDepth: g.QueueDepth, P95: g.LatencyP95}
	}
	s.completions.Add(int64(rs.Completions))
	s.round.Store(int64(rs.Round + 1))

	if s.cfg.Twin != nil && s.cfg.AsyncTwin {
		select {
		case s.snapCh <- sup.StateSnapshot(s.cfg.Recent):
		default:
			// The twin is still chewing on an older snapshot; skip this
			// one rather than block the serving loop (latest wins).
		}
	}
	return nil
}

// Run serves the given number of rounds back to back.
func (s *Server) Run(rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := s.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the async twin goroutine, if any. Safe to call more than
// once; the serving loop must not RunRound after Close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.snapCh != nil {
			close(s.snapCh)
			<-s.twinDone
		}
	})
}

// twinLoop is the async twin: advise on each snapshot the serving loop
// offers, publish the latest recommendation, repeat.
func (s *Server) twinLoop() {
	defer close(s.twinDone)
	for snap := range s.snapCh {
		rec, err := s.cfg.Twin.Advise(snap)
		if err != nil {
			continue
		}
		// Replace any unconsumed advice with the fresh one.
		select {
		case <-s.advCh:
		default:
		}
		select {
		case s.advCh <- rec:
		default:
		}
	}
}

// Accepted returns how many drained requests admission admitted so
// far.
func (s *Server) Accepted() int64 { return s.accepted.Load() }

// Shed returns how many drained requests admission refused so far.
func (s *Server) Shed() int64 { return s.shed.Load() }

// Invalid returns how many drained requests named a group the fleet
// does not have.
func (s *Server) Invalid() int64 { return s.invalid.Load() }

// Completions returns how many requests the fleet has served to
// completion.
func (s *Server) Completions() int64 { return s.completions.Load() }

// Round returns how many rounds the loop has served.
func (s *Server) Round() int64 { return s.round.Load() }
