package serve

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/calibrate"
	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/workload"
)

func syntheticProfile(tb testing.TB) *calibrate.Profile {
	tb.Helper()
	prof, err := calibrate.Run(fleet.NewSynthetic(fleet.SyntheticOptions{}), calibrate.Options{Set: workload.Training})
	if err != nil {
		tb.Fatal(err)
	}
	return prof
}

// webScenario is the serving tests' fleet: one machine, one "web"
// group of synthetic instances running open-loop (deterministic
// service times), fed only by the gateway.
func webScenario(prof *calibrate.Profile, instances int) fleet.Scenario {
	return fleet.Scenario{
		Machines:        1,
		CoresPerMachine: 8,
		Quantum:         time.Second,
		ControlDisabled: true,
		Groups: []fleet.WorkloadGroup{{
			Name:      "web",
			NewApp:    func() (workload.App, error) { return fleet.NewSynthetic(fleet.SyntheticOptions{}), nil },
			Profile:   prof,
			Instances: instances,
		}},
	}
}

func newServer(tb testing.TB, sup *fleet.Supervisor, clk clock.Waiter, gw *Gateway, adm *Admission) *Server {
	tb.Helper()
	srv, err := New(Config{Supervisor: sup, Clock: clk, Gateway: gw, Admission: adm})
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// TestServeLoopCompletesRequests is the smoke path: requests submitted
// during round 0's wall window are injected at their receive instants
// and served within the round.
func TestServeLoopCompletesRequests(t *testing.T) {
	sup, err := fleet.NewScenario(webScenario(syntheticProfile(t), 2))
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(time.Unix(1_000_000, 0)) // arbitrary wall anchor
	gw := NewGateway(clk, 64)
	srv := newServer(t, sup, clk, gw, nil)

	const n = 5
	for i := 0; i < n; i++ {
		if !gw.Submit(0, 10) {
			t.Fatalf("submit %d refused with an empty intake", i)
		}
	}
	if err := srv.RunRound(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Accepted(); got != n {
		t.Errorf("accepted = %d, want %d", got, n)
	}
	if got := srv.Completions(); got != n {
		t.Errorf("completions = %d, want %d (0.25 s services fit round 0)", got, n)
	}
	if got := sup.Report().Completions; got != n {
		t.Errorf("fleet report completions = %d, want %d", got, n)
	}
	if got := srv.Round(); got != 1 {
		t.Errorf("served rounds = %d, want 1", got)
	}
	// The wall clock advanced exactly one quantum.
	wantNow := time.Unix(1_000_000, 0).Add(time.Second)
	if !clk.Now().Equal(wantNow) {
		t.Errorf("wall clock at %v after round 0, want %v", clk.Now(), wantNow)
	}
}

// submitSpread stamps rate submissions uniformly across round r's wall
// window by positioning the virtual clock at each receive instant —
// the deterministic stand-in for a live client swarm.
func submitSpread(tb testing.TB, clk *clock.Virtual, gw *Gateway, anchor time.Time, r, rate, iters int) {
	tb.Helper()
	start := anchor.Add(time.Duration(r) * time.Second)
	for i := 0; i < rate; i++ {
		clk.Set(start.Add(time.Duration(i) * time.Second / time.Duration(rate)))
		if !gw.Submit(0, iters) {
			tb.Fatalf("round %d submit %d refused", r, i)
		}
	}
}

// TestServeLoopDeterministic runs the identical serving schedule twice
// — same arrival stamps, same admission policy — and requires
// bit-identical fleet reports: the serving loop is a pure function of
// the request stream once the clock is virtual.
func TestServeLoopDeterministic(t *testing.T) {
	prof := syntheticProfile(t)
	anchor := time.Unix(5_000, 0)
	run := func() fleet.Report {
		sup, err := fleet.NewScenario(webScenario(prof, 3))
		if err != nil {
			t.Fatal(err)
		}
		clk := clock.NewVirtual(anchor)
		gw := NewGateway(clk, 256)
		adm, err := NewAdmission([]AdmissionConfig{{Rate: 10, Burst: 4, MaxQueuePerInstance: 6}})
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(t, sup, clk, gw, adm)
		for r := 0; r < 6; r++ {
			rate := 4 + 3*(r%3) // 4, 7, 10, 4, ...
			submitSpread(t, clk, gw, anchor, r, rate, 10)
			if err := srv.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		return sup.Report()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical serving runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestBudgetDropShedsAndRecovers is the serving-mode acceptance check:
// under a mid-run power-cap drop the fleet sheds load at the gateway
// instead of queueing unboundedly, and the accepted-request p95
// recovers once the cap lifts.
func TestBudgetDropShedsAndRecovers(t *testing.T) {
	const (
		iters     = 10 // 0.25 s service at full frequency
		rate      = 14 // offered load; capacity is 16/s uncapped, ~10.7/s at min DVFS
		insts     = 4
		watermark = 4
		rounds    = 24
		dropR     = 6  // cap drops entering round 6
		liftR     = 14 // and lifts entering round 14
	)
	sc := webScenario(syntheticProfile(t), insts)
	sup, err := fleet.NewScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	anchor := time.Unix(0, 0)
	clk := clock.NewVirtual(anchor)
	gw := NewGateway(clk, 1024)
	adm, err := NewAdmission([]AdmissionConfig{{MaxQueuePerInstance: watermark}})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, sup, clk, gw, adm)

	// Schedule the cap drop and lift on the virtual timeline, exactly
	// as cmd/fleet -serve does with its wall-clock flags.
	epoch := time.Unix(0, 0)
	sup.SetBudgetAt(epoch.Add(dropR*time.Second), 100)
	sup.SetBudgetAt(epoch.Add(liftR*time.Second), 0)

	var rs []fleet.RoundStats
	for r := 0; r < rounds; r++ {
		submitSpread(t, clk, gw, anchor, r, rate, iters)
		if err := srv.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	rs = sup.Report().Rounds
	if len(rs) != rounds {
		t.Fatalf("got %d rounds, want %d", len(rs), rounds)
	}

	var shedBefore, shedDuring, maxQueue int
	for r, s := range rs {
		if s.QueueDepth > maxQueue {
			maxQueue = s.QueueDepth
		}
		switch {
		case r < dropR:
			shedBefore += s.Shed
		case r < liftR:
			shedDuring += s.Shed
		}
	}
	if shedBefore != 0 {
		t.Errorf("shed %d requests before the cap dropped; uncapped capacity covers the load", shedBefore)
	}
	if shedDuring == 0 {
		t.Errorf("cap drop to 100 W shed nothing; admission must refuse what the throttled fleet cannot serve")
	}
	// Shedding bounds the backlog: one round of excess arrivals can
	// land before admission sees the breach, but the queue must not
	// grow round over round for the whole capped window.
	if limit := watermark*insts + rate; maxQueue > limit {
		t.Errorf("peak backlog %d exceeds %d; shedding failed to bound the queue", maxQueue, limit)
	}
	// Recovery: by the last rounds the backlog has drained, shedding
	// has stopped, and the accepted-request p95 is back at the uncapped
	// service time.
	tail := rs[rounds-2:]
	for _, s := range tail {
		if s.Shed != 0 {
			t.Errorf("round %d still shedding %d after the cap lifted", s.Round, s.Shed)
		}
		if s.LatencyP95 > 0.6 {
			t.Errorf("round %d p95 = %.3f s after the cap lifted, want recovered (< 0.6 s)", s.Round, s.LatencyP95)
		}
		if s.Completions == 0 {
			t.Errorf("round %d served nothing after the cap lifted", s.Round)
		}
	}
	// And the shed totals flow through to the run summary: per-round
	// rows, the run total, the per-group attribution, and the serving
	// counters all agree.
	rep := sup.Report()
	roundTotal := 0
	for _, s := range rs {
		roundTotal += s.Shed
	}
	if rep.Shed != roundTotal {
		t.Errorf("report shed %d != per-round sum %d", rep.Shed, roundTotal)
	}
	if int64(rep.Shed) != srv.Shed() {
		t.Errorf("report shed %d != server shed %d", rep.Shed, srv.Shed())
	}
	if rep.PerGroup[0].Shed != rep.Shed {
		t.Errorf("group shed %d != total %d for a one-group fleet", rep.PerGroup[0].Shed, rep.Shed)
	}
}

// TestRequestConservation pins the serving mode's bookkeeping: every
// submitted request is accounted for exactly once across acceptance,
// shedding, intake overflow, and invalid-group refusal; every accepted
// request is either completed, still queued, or still pending
// injection.
func TestRequestConservation(t *testing.T) {
	sup, err := fleet.NewScenario(webScenario(syntheticProfile(t), 2))
	if err != nil {
		t.Fatal(err)
	}
	anchor := time.Unix(7, 0)
	clk := clock.NewVirtual(anchor)
	gw := NewGateway(clk, 8) // deliberately tiny: force overflow
	adm, err := NewAdmission([]AdmissionConfig{{Rate: 5, MaxQueuePerInstance: 3}})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, sup, clk, gw, adm)

	for r := 0; r < 5; r++ {
		for i := 0; i < 12; i++ {
			gw.Submit(i%3-1, 10) // every third submission names group -1
		}
		if err := srv.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	assertConservation(t, srv, gw, sup)
}

func assertConservation(t *testing.T, srv *Server, gw *Gateway, sup *fleet.Supervisor) {
	t.Helper()
	submitted := gw.Submitted()
	accounted := srv.Accepted() + srv.Shed() + srv.Invalid() + gw.Overflow()
	if submitted != accounted {
		t.Errorf("submitted %d != accepted %d + shed %d + invalid %d + overflow %d",
			submitted, srv.Accepted(), srv.Shed(), srv.Invalid(), gw.Overflow())
	}
	rep := sup.Report()
	inFlight := 0
	if n := len(rep.Rounds); n > 0 {
		inFlight = rep.Rounds[n-1].QueueDepth
	}
	if got := int64(rep.Completions + inFlight + sup.InjectedPending()); srv.Accepted() != got {
		t.Errorf("accepted %d != completed %d + queued %d + pending injection %d",
			srv.Accepted(), rep.Completions, inFlight, sup.InjectedPending())
	}
}

// FuzzArrivalConservation drives the serving loop with an arbitrary
// byte-stream-shaped arrival schedule and checks the conservation
// invariant after every run: no request is ever double-counted or
// lost, whatever the submission pattern.
func FuzzArrivalConservation(f *testing.F) {
	f.Add([]byte{3, 0x12, 0x81, 0xff, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xfe, 0xfd, 1, 2, 3})
	prof, profErr := calibrate.Run(fleet.NewSynthetic(fleet.SyntheticOptions{}), calibrate.Options{Set: workload.Training})
	f.Fuzz(func(t *testing.T, data []byte) {
		if profErr != nil {
			t.Fatal(profErr)
		}
		if len(data) > 64 {
			data = data[:64]
		}
		sup, err := fleet.NewScenario(webScenario(prof, 2))
		if err != nil {
			t.Fatal(err)
		}
		anchor := time.Unix(42, 0)
		clk := clock.NewVirtual(anchor)
		gw := NewGateway(clk, 16)
		adm, err := NewAdmission([]AdmissionConfig{{Rate: 6, Burst: 3, MaxQueuePerInstance: 4, SLOP95: 0.6}})
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(t, sup, clk, gw, adm)

		// Each byte is one submission: low bits pick the group (2 of 8
		// values are invalid on purpose), high bits the size and the
		// position inside the round. A zero byte ends the round.
		r := 0
		roundStart := anchor
		for _, b := range data {
			if b == 0 || r >= 8 {
				if err := srv.RunRound(); err != nil {
					t.Fatal(err)
				}
				r++
				roundStart = anchor.Add(time.Duration(r) * time.Second)
				if r >= 8 {
					break
				}
				continue
			}
			group := int(b&0x07) - 1 // -1..6: everything but 0 is invalid for a 1-group fleet
			iters := 1 + int(b>>5)
			offset := time.Duration(b>>3&0x03) * 250 * time.Millisecond
			if at := roundStart.Add(offset); at.After(clk.Now()) {
				clk.Set(at)
			}
			gw.Submit(group, iters)
		}
		if err := srv.RunRound(); err != nil {
			t.Fatal(err)
		}
		assertConservation(t, srv, gw, sup)
	})
}
