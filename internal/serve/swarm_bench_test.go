package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet"
)

// TestAsyncTwinLoopLivesAndStops exercises the deployment shape — the
// twin advising from its own goroutine while the serving loop runs —
// under the race detector: snapshots flow out, advice flows back (or
// is dropped, latest-wins), and Close is idempotent.
func TestAsyncTwinLoopLivesAndStops(t *testing.T) {
	prof := syntheticProfile(t)
	sup, err := fleet.NewScenario(twinScenario(prof, 2))
	if err != nil {
		t.Fatal(err)
	}
	ts := &TwinScaler{Inner: constScaler(2)}
	twin, err := NewTwin(TwinConfig{
		Scenario:     func() fleet.Scenario { return twinScenario(prof, 0) },
		ReqIters:     10,
		SLO:          fleet.SLO{P95: 0.6},
		MaxInstances: 4,
		Horizon:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Autoscale(ts, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(time.Unix(0, 0))
	gw := NewGateway(clk, 256)
	srv, err := New(Config{
		Supervisor: sup, Clock: clk, Gateway: gw,
		Twin: twin, TwinScaler: ts, AsyncTwin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for i := 0; i < 6; i++ {
			gw.Submit(0, 10)
		}
		if err := srv.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	srv.Close() // idempotent
	if srv.Completions() == 0 {
		t.Error("async-twin serving loop completed nothing")
	}
}

// BenchmarkServeSwarm is the client-swarm load test: a pool of
// producer goroutines hammers the gateway while the serving loop runs
// rounds on a virtual clock, so the benchmark measures the serving
// path itself — drain, admission, injection, engine step — not wall
// sleeping. One iteration is one served round under swarm load.
func BenchmarkServeSwarm(b *testing.B) {
	const (
		swarm     = 8  // concurrent client goroutines
		perClient = 16 // submissions per client per round
		iters     = 10
	)
	prof := syntheticProfile(b)
	sup, err := fleet.NewScenario(webScenario(prof, 8))
	if err != nil {
		b.Fatal(err)
	}
	clk := clock.NewVirtual(time.Unix(0, 0))
	gw := NewGateway(clk, swarm*perClient*2)
	adm, err := NewAdmission([]AdmissionConfig{{MaxQueuePerInstance: 8}})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Supervisor: sup, Clock: clk, Gateway: gw, Admission: adm})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for c := 0; c < swarm; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					gw.Submit(0, iters)
				}
			}()
		}
		wg.Wait()
		if err := srv.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if srv.Completions() == 0 {
		b.Fatal("swarm benchmark completed nothing")
	}
	b.ReportMetric(float64(srv.Completions())/float64(b.N), "completions/round")
	b.ReportMetric(float64(srv.Shed())/float64(b.N), "shed/round")
}

// BenchmarkGatewaySubmit pins the gateway hot path: a submit into a
// drained channel must not allocate (escapeguard pins the static side;
// this pins the runtime side).
func BenchmarkGatewaySubmit(b *testing.B) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	gw := NewGateway(clk, 1)
	var scratch []gwReq
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		gw.Submit(0, 10)
		scratch = gw.drain(scratch[:0])
	}
	if len(scratch) != 1 {
		b.Fatal("drain lost the submission")
	}
}
