package serve

import (
	"fmt"
	"sync"

	"repro/internal/fleet"
)

// TwinConfig configures the digital twin: a virtual replica of the
// live fleet that replays what-if scenarios faster than real time.
type TwinConfig struct {
	// Scenario builds a fresh replica scenario — the same machines,
	// groups, and knobs as the live fleet (required; a factory, because
	// each what-if needs its own instances). The twin overrides group
	// 0's Instances per candidate and fleet.NewFromSnapshot overrides
	// Budget from the snapshot.
	Scenario func() fleet.Scenario
	// ReqIters sizes the replica's requests in stream iterations,
	// matching what the gateway serves (0 = whole streams).
	ReqIters int
	// SLO is the latency objective candidates are judged against
	// (SLO.P95 > 0 required).
	SLO fleet.SLO
	// MaxInstances bounds the candidate search (required, >= 1).
	MaxInstances int
	// Horizon is how many rounds each what-if projects forward
	// (default 8).
	Horizon int
	// Seed seeds the what-if arrival realizations (default 1).
	Seed int64
}

// Twin is the serving mode's faster-than-real-time what-if engine. It
// takes a snapshot of the live fleet — provisioning, budget, standing
// backlog, recent arrival trace — and replays candidate instance
// counts against a sustained-peak projection of the recent load on the
// virtual engine, which simulates a full quantum in well under the
// quantum's wall time. The smallest candidate that holds the SLO with
// a bounded backlog becomes the feed-forward recommendation a
// TwinScaler clamps the measurement-driven policy to.
type Twin struct {
	cfg TwinConfig
}

// NewTwin validates cfg and builds a twin.
func NewTwin(cfg TwinConfig) (*Twin, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("serve: twin requires a scenario factory")
	}
	if cfg.SLO.P95 <= 0 {
		return nil, fmt.Errorf("serve: twin requires SLO.P95 > 0")
	}
	if cfg.MaxInstances < 1 {
		return nil, fmt.Errorf("serve: twin requires MaxInstances >= 1")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SLO.QueuePerInstance == 0 {
		cfg.SLO.QueuePerInstance = 8
	}
	return &Twin{cfg: cfg}, nil
}

// fixedScaler holds group 0 at a constant accepting count — the twin's
// candidate under test.
type fixedScaler int

func (f fixedScaler) Scale(fleet.ScaleObservation) int { return int(f) }

// Advise runs the what-if search for the snapshot: project the recent
// peak arrival rate forward over the horizon, replay each candidate
// count from the snapshot's exact state (backlog included), and return
// the smallest count that ends the horizon with zero accountable SLO
// violations and a backlog inside the SLO's queue watermark. If no
// candidate manages that, MaxInstances is returned — the twin asks for
// everything it may.
func (t *Twin) Advise(snap fleet.FleetSnapshot) (int, error) {
	if len(snap.Groups) == 0 {
		return 0, fmt.Errorf("serve: snapshot has no groups")
	}
	peak := 1.0
	for _, v := range snap.Groups[0].RecentArrivals {
		if v > peak {
			peak = v
		}
	}
	rates := make([]float64, t.cfg.Horizon)
	for i := range rates {
		rates[i] = peak
	}
	for n := 1; n <= t.cfg.MaxInstances; n++ {
		sc := t.cfg.Scenario()
		if len(sc.Groups) == 0 {
			return 0, fmt.Errorf("serve: twin scenario factory built no groups")
		}
		sc.Groups[0].Instances = n
		sup, err := fleet.NewFromSnapshot(sc, snap)
		if err != nil {
			return 0, err
		}
		res, err := fleet.Replay(sup, fleet.ReplayConfig{
			Rates:    rates,
			Seed:     t.cfg.Seed,
			ReqIters: t.cfg.ReqIters,
			SLO:      t.cfg.SLO,
			Scaler:   fixedScaler(n),
		})
		if err != nil {
			return 0, err
		}
		last := res.Points[len(res.Points)-1]
		if res.Violations == 0 && float64(last.QueueDepth) <= float64(n)*t.cfg.SLO.QueuePerInstance {
			return n, nil
		}
	}
	return t.cfg.MaxInstances, nil
}

// TwinScaler feeds the twin's recommendation forward into a
// measurement-driven autoscaling policy: the inner policy's proposal
// is clamped to within ±1 of the latest advice, exactly the damping
// band the planner feed-forward uses (fleet.HysteresisScaler's
// clamp-to-plan). With no advice yet it is transparent. SetAdvice is
// safe to call from the twin's goroutine while the serving loop
// scales.
type TwinScaler struct {
	// Inner is the measurement-driven policy being damped (required).
	Inner fleet.Autoscaler

	mu  sync.Mutex
	rec int
}

// SetAdvice installs the twin's latest recommended accepting count
// (<= 0 clears the advice).
func (ts *TwinScaler) SetAdvice(n int) {
	ts.mu.Lock()
	ts.rec = n
	ts.mu.Unlock()
}

// Advice returns the current recommendation (0 = none).
func (ts *TwinScaler) Advice() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.rec
}

// Scale implements fleet.Autoscaler.
func (ts *TwinScaler) Scale(obs fleet.ScaleObservation) int {
	n := ts.Inner.Scale(obs)
	rec := ts.Advice()
	if rec <= 0 {
		return n
	}
	if n < rec-1 {
		n = rec - 1
	}
	if n > rec+1 {
		n = rec + 1
	}
	if n < 1 {
		n = 1
	}
	return n
}
