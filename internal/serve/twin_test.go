package serve

import (
	"testing"
	"time"

	"repro/internal/calibrate"
	"repro/internal/clock"
	"repro/internal/fleet"
)

// twinScenario is the twin tests' fleet: like webScenario but with
// split dispatch, the independent-station regime the planner and twin
// feed-forward results are stated in.
func twinScenario(prof *calibrate.Profile, instances int) fleet.Scenario {
	sc := webScenario(prof, instances)
	sc.SplitDispatch = true
	return sc
}

// constScaler proposes a fixed count — a stateless stand-in for the
// measurement-driven policy in clamp tests.
type constScaler int

func (c constScaler) Scale(fleet.ScaleObservation) int { return int(c) }

// TestTwinScalerClampsToAdvice pins the feed-forward band: proposals
// are clamped to ±1 of the advice, and the scaler is transparent with
// no advice installed.
func TestTwinScalerClampsToAdvice(t *testing.T) {
	var obs fleet.ScaleObservation
	for _, tc := range []struct {
		name   string
		inner  int
		advice int
		want   int
	}{
		{"no advice is transparent", 7, 0, 7},
		{"proposal above band clamps down", 7, 3, 4},
		{"proposal below band clamps up", 1, 5, 4},
		{"proposal inside band passes", 4, 4, 4},
		{"band edge passes", 5, 4, 5},
		{"clamp floors at one instance", 0, 1, 1},
		{"cleared advice is transparent again", 7, -1, 7},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := &TwinScaler{Inner: constScaler(tc.inner)}
			ts.SetAdvice(tc.advice)
			if got := ts.Scale(obs); got != tc.want {
				t.Errorf("inner %d, advice %d: scale = %d, want %d", tc.inner, tc.advice, got, tc.want)
			}
		})
	}
}

// TestTwinFeedForwardFewerScaleActions is the acceptance check for the
// digital twin: on the same deterministic serving schedule — a trough
// lead-in, then a sustained peak — the twin-fed policy (hysteresis
// clamped to ±1 of the twin's what-if recommendation) must issue
// strictly fewer scale actions than the pure measurement-driven
// policy, at no more SLO violations. Fully virtual clock: the twin
// advises synchronously and the whole comparison is deterministic.
func TestTwinFeedForwardFewerScaleActions(t *testing.T) {
	const (
		iters  = 10  // 0.25 s service at full frequency
		sloP95 = 0.6 // seconds
		maxIn  = 8
		trough = 2
		peak   = 10
		rounds = 40
	)
	prof := syntheticProfile(t)
	anchor := time.Unix(0, 0)

	run := func(useTwin bool) (moves, violations int) {
		sup, err := fleet.NewScenario(twinScenario(prof, 1))
		if err != nil {
			t.Fatal(err)
		}
		inner, err := fleet.NewHysteresisScaler(fleet.HysteresisConfig{
			SLO:          fleet.SLO{P95: sloP95},
			Max:          maxIn,
			DownFraction: 0.7,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Clock: clock.NewVirtual(anchor), Supervisor: sup}
		cfg.Gateway = NewGateway(cfg.Clock, 4096)
		var scaler fleet.Autoscaler = inner
		if useTwin {
			ts := &TwinScaler{Inner: inner}
			twin, err := NewTwin(TwinConfig{
				Scenario:     func() fleet.Scenario { return twinScenario(prof, 0) },
				ReqIters:     iters,
				SLO:          fleet.SLO{P95: sloP95},
				MaxInstances: maxIn,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Twin, cfg.TwinScaler = twin, ts
			scaler = ts
		}
		if err := sup.Autoscale(scaler, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clk := cfg.Clock.(*clock.Virtual)
		for r := 0; r < rounds; r++ {
			rate := peak
			if r < 6 {
				rate = trough
			}
			submitSpread(t, clk, cfg.Gateway, anchor, r, rate, iters)
			if err := srv.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		for _, rs := range sup.Report().Rounds {
			if rs.LatencyP95 > sloP95 {
				violations++
			}
		}
		return sup.ScaleMoves(), violations
	}

	pureMoves, pureViol := run(false)
	twinMoves, twinViol := run(true)
	if twinMoves >= pureMoves {
		t.Errorf("twin-fed policy issued %d scale actions, pure policy %d; want strictly fewer", twinMoves, pureMoves)
	}
	if twinViol > pureViol {
		t.Errorf("twin-fed policy has %d SLO-breach rounds vs pure %d; damping must not cost the objective", twinViol, pureViol)
	}
}

// TestTwinAdviseFindsFeasibleCount pins the what-if search itself: for
// a snapshot whose recent trace peaks well above one instance's
// capacity, the twin recommends a count that actually holds the SLO in
// its own replay, and recommends less for a quiet trace.
func TestTwinAdviseFindsFeasibleCount(t *testing.T) {
	prof := syntheticProfile(t)
	twin, err := NewTwin(TwinConfig{
		Scenario:     func() fleet.Scenario { return twinScenario(prof, 0) },
		ReqIters:     10,
		SLO:          fleet.SLO{P95: 0.6},
		MaxInstances: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := fleet.FleetSnapshot{
		Quantum: time.Second,
		Groups: []fleet.GroupSnapshot{{
			Name:           "web",
			Accepting:      1,
			RecentArrivals: []float64{2, 8, 10, 10},
		}},
	}
	busy, err := twin.Advise(snap)
	if err != nil {
		t.Fatal(err)
	}
	if busy < 2 || busy > 8 {
		t.Errorf("peak-10 advice = %d instances, want in (1, 8]: one 0.25 s-service instance cannot hold 10/s", busy)
	}
	snap.Groups[0].RecentArrivals = []float64{1, 1, 1, 1}
	quiet, err := twin.Advise(snap)
	if err != nil {
		t.Fatal(err)
	}
	if quiet >= busy {
		t.Errorf("quiet-trace advice %d not below peak-trace advice %d", quiet, busy)
	}
	// Deterministic: the same snapshot advises the same count.
	again, err := twin.Advise(snap)
	if err != nil {
		t.Fatal(err)
	}
	if again != quiet {
		t.Errorf("repeated Advise diverged: %d then %d", quiet, again)
	}
}
