// Package stats provides the small statistical toolkit PowerDial needs:
// means, least-squares fits, correlation coefficients (Table 2 of the
// paper), and Pareto-frontier extraction (Sec. 2.2).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by fits and correlations that need at
// least two points.
var ErrInsufficientData = errors.New("stats: need at least two data points")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Fit is a least-squares line y = Slope*x + Intercept together with the
// correlation coefficient R of the underlying data.
type Fit struct {
	Slope     float64
	Intercept float64
	R         float64
}

// LeastSquares fits y = a*x + b to the paired samples and returns the fit
// along with the Pearson correlation coefficient, following the Table 2
// methodology ("compute a linear least squares fit of training data to
// production data, and compute the correlation coefficient of each fit").
func LeastSquares(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Fit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: zero variance in x")
	}
	f := Fit{Slope: sxy / sxx, Intercept: my - (sxy/sxx)*mx}
	if syy == 0 {
		// A constant y is perfectly predicted by the constant fit.
		f.R = 1
		return f, nil
	}
	f.R = sxy / math.Sqrt(sxx*syy)
	return f, nil
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples.
func Correlation(xs, ys []float64) (float64, error) {
	f, err := LeastSquares(xs, ys)
	if err != nil {
		return 0, err
	}
	return f.R, nil
}

// Point is a location in the QoS-loss versus speedup trade-off space.
// Lower Loss is better; higher Speedup is better.
type Point struct {
	Loss    float64
	Speedup float64
}

// Dominates reports whether p is at least as good as q in both dimensions
// and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	if p.Loss > q.Loss || p.Speedup < q.Speedup {
		return false
	}
	return p.Loss < q.Loss || p.Speedup > q.Speedup
}

// ParetoFront returns the indices (into pts) of the Pareto-optimal points,
// sorted by increasing QoS loss. A point is Pareto-optimal if no other
// point dominates it. Duplicate points are each retained.
func ParetoFront(pts []Point) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	// Sort by loss ascending, speedup descending: then a point is
	// dominated exactly when an earlier point has speedup >= its own
	// (strictly better in at least one dimension handled below).
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.Loss != pb.Loss {
			return pa.Loss < pb.Loss
		}
		return pa.Speedup > pb.Speedup
	})
	var front []int
	bestSpeedup := math.Inf(-1)
	for _, i := range idx {
		p := pts[i]
		if p.Speedup > bestSpeedup {
			front = append(front, i)
			bestSpeedup = p.Speedup
		} else if p.Speedup == bestSpeedup {
			// Equal speedup: keep only if equal loss to the point that
			// set bestSpeedup (a duplicate, not dominated).
			last := pts[front[len(front)-1]]
			if last.Loss == p.Loss {
				front = append(front, i)
			}
		}
	}
	sort.Slice(front, func(a, b int) bool {
		pa, pb := pts[front[a]], pts[front[b]]
		if pa.Loss != pb.Loss {
			return pa.Loss < pb.Loss
		}
		return pa.Speedup > pb.Speedup
	})
	return front
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
