package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	f, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 3, 1e-9) || !almostEqual(f.Intercept, -7, 1e-9) {
		t.Errorf("fit = %+v, want slope 3 intercept -7", f)
	}
	if !almostEqual(f.R, 1, 1e-9) {
		t.Errorf("R = %v, want 1", f.R)
	}
}

func TestLeastSquaresAntiCorrelated(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 2, 1, 0}
	f, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.R, -1, 1e-9) {
		t.Errorf("R = %v, want -1", f.R)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := LeastSquares([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("want error for zero x variance")
	}
}

func TestLeastSquaresConstantY(t *testing.T) {
	f, err := LeastSquares([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || f.R != 1 {
		t.Errorf("constant y: fit = %+v, want slope 0 R 1", f)
	}
}

func TestCorrelationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Correlation(xs, ys)
		if err != nil {
			continue // degenerate draw
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("correlation %v out of [-1,1]", r)
		}
	}
}

func TestDominates(t *testing.T) {
	base := Point{Loss: 1, Speedup: 2}
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{0.5, 3}, base, true},  // better both
		{Point{1, 3}, base, true},    // equal loss, better speedup
		{Point{0.5, 2}, base, true},  // better loss, equal speedup
		{base, base, false},          // identical
		{Point{2, 3}, base, false},   // worse loss
		{Point{0.5, 1}, base, false}, // worse speedup
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%v dominates %v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestParetoFrontSimple(t *testing.T) {
	pts := []Point{
		{0, 1},   // baseline: optimal
		{1, 2},   // optimal
		{2, 1.5}, // dominated by {1,2}
		{3, 4},   // optimal
		{3, 3},   // dominated by {3,4}
	}
	front := ParetoFront(pts)
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want indices %v", front, want)
	}
	for _, i := range front {
		if !want[i] {
			t.Errorf("unexpected index %d in front %v", i, front)
		}
	}
}

func TestParetoFrontSortedByLoss(t *testing.T) {
	pts := []Point{{3, 4}, {0, 1}, {1, 2}}
	front := ParetoFront(pts)
	for i := 1; i < len(front); i++ {
		if pts[front[i-1]].Loss > pts[front[i]].Loss {
			t.Fatalf("front not sorted by loss: %v", front)
		}
	}
}

func TestParetoFrontEmpty(t *testing.T) {
	if got := ParetoFront(nil); len(got) != 0 {
		t.Fatalf("ParetoFront(nil) = %v", got)
	}
}

func TestParetoFrontDuplicates(t *testing.T) {
	pts := []Point{{1, 2}, {1, 2}, {0, 1}}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("duplicates should both be retained: front=%v", front)
	}
}

// Property: no point on the front is dominated by any point in the input,
// and every point off the front is dominated by some point on it.
func TestParetoFrontProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{
				Loss:    math.Abs(rng.NormFloat64()) * 10,
				Speedup: 1 + math.Abs(rng.NormFloat64())*5,
			}
		}
		front := ParetoFront(pts)
		onFront := make(map[int]bool, len(front))
		for _, i := range front {
			onFront[i] = true
		}
		for _, i := range front {
			for j := range pts {
				if pts[j].Dominates(pts[i]) {
					return false
				}
			}
		}
		for j := range pts {
			if onFront[j] {
				continue
			}
			dominated := false
			for _, i := range front {
				if pts[i].Dominates(pts[j]) || pts[i] == pts[j] {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}
