package sweep

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The sweep CSV is long format: one row per (cell, metric) pair with
// the replication count, mean, sample stddev, and the 95% CI bounds.
// Axis coordinates get one column each so downstream tools can pivot
// without parsing the label. Field order, float formatting ('g', -1 —
// shortest round-trip), and row order (cells in canonical grid order,
// metrics in metricsFor order) are all fixed, so the bytes are a pure
// function of (grid spec, base seed).

// Header returns the grid's CSV header line (no trailing newline) —
// what -hdr prints so scripts can learn the schema without running the
// sweep.
func Header(g *Grid) string {
	cols := []string{"cell", "label"}
	for _, ax := range g.Axes {
		cols = append(cols, csvEscape(ax.Param))
	}
	cols = append(cols, "metric", "n", "mean", "std", "ci95_lo", "ci95_hi")
	return strings.Join(cols, ",")
}

// WriteCSV writes the aggregated sweep as deterministic long-format
// CSV, header line included.
func WriteCSV(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintln(w, Header(res.Grid)); err != nil {
		return err
	}
	ms := metricsFor(res.Grid)
	var b strings.Builder
	for _, agg := range res.Aggregates {
		prefix := strconv.Itoa(agg.Cell) + "," + csvEscape(agg.Label)
		for _, v := range agg.Values {
			prefix += "," + formatFloat(v)
		}
		for mi, m := range ms {
			b.Reset()
			b.WriteString(prefix)
			b.WriteByte(',')
			b.WriteString(m.Name)
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(agg.N))
			b.WriteByte(',')
			b.WriteString(formatFloat(agg.Mean[mi]))
			b.WriteByte(',')
			b.WriteString(formatFloat(agg.Std[mi]))
			b.WriteByte(',')
			b.WriteString(formatFloat(agg.Mean[mi] - agg.CI95[mi]))
			b.WriteByte(',')
			b.WriteString(formatFloat(agg.Mean[mi] + agg.CI95[mi]))
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvEscape quotes a field when it contains a comma, quote, or newline
// (cell labels join axis values with commas).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
