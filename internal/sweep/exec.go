package sweep

import (
	"fmt"
	"io"
	"os"
)

// ExecConfig is the shared CLI surface behind `cmd/fleet -sweep` and
// the thin `cmd/sweep` binary.
type ExecConfig struct {
	// GridPath is the grid-spec JSON file.
	GridPath string
	// Procs / Reps / Rounds override the pool width and the grid's
	// replication count / horizon when > 0.
	Procs  int
	Reps   int
	Rounds int
	// OutPath receives the CSV ("" or "-" = stdout); PlotPath, when
	// set, receives the SVG trend figure.
	OutPath  string
	PlotPath string
	// Hdr prints the CSV schema line for the grid and exits without
	// running any replication.
	Hdr bool
	// Log, when non-nil, receives progress lines (cmd wiring passes
	// stderr so stdout stays pure CSV).
	Log io.Writer
}

// Exec loads the grid, runs the sweep (or just prints the schema under
// Hdr), and writes the CSV and optional SVG outputs.
func Exec(cfg ExecConfig) error {
	data, err := os.ReadFile(cfg.GridPath)
	if err != nil {
		return err
	}
	g, err := ParseGrid(data)
	if err != nil {
		return fmt.Errorf("sweep %s: %w", cfg.GridPath, err)
	}
	out := io.Writer(os.Stdout)
	if cfg.OutPath != "" && cfg.OutPath != "-" {
		f, err := os.Create(cfg.OutPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if cfg.Hdr {
		_, err := fmt.Fprintln(out, Header(g))
		return err
	}
	opt := Options{Procs: cfg.Procs, Replications: cfg.Reps, Rounds: cfg.Rounds}
	if cfg.Log != nil {
		cells := g.CellCount()
		reps := g.Replications
		if cfg.Reps > 0 {
			reps = cfg.Reps
		}
		fmt.Fprintf(cfg.Log, "sweep %s: %d cells x %d replications\n", g.Name, cells, reps)
		last := -1
		opt.Progress = func(done, total int) {
			pct := done * 10 / total
			if pct > last {
				last = pct
				fmt.Fprintf(cfg.Log, "sweep: %d/%d replications\n", done, total)
			}
		}
	}
	res, err := Run(g, opt)
	if err != nil {
		return err
	}
	if err := WriteCSV(out, res); err != nil {
		return err
	}
	if cfg.PlotPath != "" {
		f, err := os.Create(cfg.PlotPath)
		if err != nil {
			return err
		}
		if err := WriteSVG(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
