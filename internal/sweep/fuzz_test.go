package sweep

import (
	"testing"
)

// FuzzSweepGrid holds the grid-spec contract over arbitrary bytes:
// ParseGrid never panics — it either rejects with an error or returns a
// validated grid — and every grid it accepts that is cheap enough to
// execute runs to completion (or rejects at construction with an
// error, never a panic) while conserving requests: every minted arrival
// is completed, aborted, fault-dropped, or still queued at the horizon.
func FuzzSweepGrid(f *testing.F) {
	f.Add([]byte(testGridJSON))
	f.Add([]byte(`{"rounds": 4, "base": {"groups": [{"name": "a", "instances": 1, "rate": 2, "reqIters": 5}]}}`))
	f.Add([]byte(`{"rounds": 6, "replications": 2, "base": {"machines": 1, "cores": 2, "budget": 0,
		"faults": {"crashRate": 0.5, "redispatch": true},
		"groups": [{"name": "a", "instances": 2, "load": "spike", "rate": 3}]},
		"axes": [{"param": "faultSeed", "values": [1, 2]}]}`))
	f.Add([]byte(`{"rounds": 5, "base": {"groups": [{"name": "s", "load": "saturate", "instances": 1},
		{"name": "auto", "sloP95": 0.8, "scaleMax": 3, "rate": 1, "reqIters": 10}]}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"rounds": 5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseGrid(data)
		if err != nil {
			if g != nil {
				t.Fatalf("ParseGrid returned both a grid and error %v", err)
			}
			return
		}
		if !cheapEnough(g) {
			return
		}
		res, err := Run(g, Options{Procs: 2, Replications: min(g.Replications, 2), Rounds: min(g.Rounds, 8)})
		if err != nil {
			// A validated grid may still be rejected at scenario
			// construction (an error, never a panic) — that is the
			// "invalid cells rejected with errors" half of the contract.
			return
		}
		for ci, reps := range res.Stats {
			for ri := range reps {
				st := &reps[ri]
				if got := st.Completions + st.Aborted + st.Dropped + st.QueueDepth; got != st.Arrivals {
					t.Errorf("cell %d rep %d: completions %d + aborted %d + dropped %d + queue %d = %d != arrivals %d",
						ci, ri, st.Completions, st.Aborted, st.Dropped, st.QueueDepth, got, st.Arrivals)
				}
				if st.EnergyJ < 0 || st.MeanPower < 0 {
					t.Errorf("cell %d rep %d: negative energy %v or power %v", ci, ri, st.EnergyJ, st.MeanPower)
				}
			}
		}
	})
}

// cheapEnough bounds the fuzz runner's per-input simulation cost: the
// validation bounds alone admit grids (4096 machines, 1e5 arrivals per
// quantum, 1e4-cost apps at 24k beats/s) that are legitimate
// experiments but far too slow to simulate thousands of times per fuzz
// session.
func cheapEnough(g *Grid) bool {
	if g.CellCount() > 4 {
		return false
	}
	for ci := 0; ci < g.CellCount(); ci++ {
		cell, _, err := g.CellAt(ci)
		if err != nil {
			return false
		}
		if err := cell.validate(); err != nil {
			return false
		}
		if cell.Machines*cell.Cores > 16 {
			return false
		}
		rateScale := cell.RateScale
		if rateScale == 0 {
			rateScale = 1
		}
		var rate float64
		instances := 0
		for _, gr := range cell.Groups {
			rate += gr.Rate * rateScale
			instances += gr.Instances
			if gr.ScaleMax > 0 {
				instances += gr.ScaleMax
			}
			if gr.BaseCost != 0 && gr.BaseCost < 1e6 {
				return false // > ~240 beats/s per core
			}
		}
		if rate > 50 || instances > 16 || len(cell.Groups) > 8 {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
