// Package sweep is the Monte Carlo experiment harness: it runs
// thousands of seeded replications of a fleet.Scenario across a
// cartesian parameter grid on a NumCPU-bounded worker pool, collects
// one Stat row per replication, and aggregates each grid cell to
// mean / stddev / 95% confidence interval rows in a CSV with a fixed
// schema header — so every performance and SLO claim the repo makes
// carries error bars instead of a single seed.
//
// The output is byte-deterministic for a fixed base seed: replication
// seeds derive from (baseSeed, cell, replication) by splitmix64 mixing
// (DeriveSeed), every replication writes into its own preassigned slot,
// and aggregation and CSV rows run in canonical cell order — so the CSV
// is identical at any worker count and across runs.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Grid is the parameter-grid spec (JSON via ParseGrid): a base cell
// configuration plus sweep axes whose cartesian product defines the
// cells, and the replication/seeding policy shared by every cell.
type Grid struct {
	// Name labels the sweep in figures and logs.
	Name string `json:"name"`
	// BaseSeed roots every replication seed (DeriveSeed; default 1).
	BaseSeed int64 `json:"baseSeed"`
	// Replications is the seeded runs per cell (default 1).
	Replications int `json:"replications"`
	// Rounds is the control quanta each replication simulates
	// (required, >= 1); Warmup rounds are excluded from the mean
	// sojourn, mean power, and SLO-violation stats (0 <= Warmup <
	// Rounds).
	Rounds int `json:"rounds"`
	Warmup int `json:"warmup"`
	// Base is the cell configuration the axes perturb.
	Base Cell `json:"base"`
	// Axes are the sweep dimensions, outermost first; cells enumerate
	// in canonical cartesian order (the last axis varies fastest).
	Axes []Axis `json:"axes"`
}

// Axis is one sweep dimension: a parameter name and the values it
// takes. Integer-valued parameters reject fractional values.
//
// Fleet-level parameters: machines, cores, workers, fluid, budget,
// arbiterIntervalMs, rateScale, budgetDropTo, budgetDropRound,
// faultSeed. Group-scoped parameters are "<group>.<field>" with field
// one of rate, instances, reqIters, pressure, sloP95, scaleMax,
// baseCost (e.g. "web.rate").
type Axis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Cell is one grid cell's fleet configuration — the sweepable subset of
// fleet.Scenario plus the mid-run budget-drop stimulus the arbitration
// study measures cap response against.
type Cell struct {
	// Machines / Cores / Budget size the cluster (defaults 2 / 2 /
	// 400 W; an explicit budget <= 0 means unlimited).
	Machines int      `json:"machines"`
	Cores    int      `json:"cores"`
	Budget   *float64 `json:"budget"`
	// Workers selects the engine worker pool (0 = GOMAXPROCS; results
	// are bit-identical at every value).
	Workers int `json:"workers"`
	// ArbiterIntervalMs is the arbiter tick period in milliseconds
	// (0 = the control quantum, i.e. 1000).
	ArbiterIntervalMs float64 `json:"arbiterIntervalMs"`
	// Fluid is the hybrid fluid/discrete queue-depth threshold
	// (0 = pure discrete).
	Fluid int `json:"fluid"`
	// EpochDispatch / SplitDispatch / ControlDisabled mirror the
	// same-named fleet.Scenario fields.
	EpochDispatch   bool `json:"epochDispatch"`
	SplitDispatch   bool `json:"splitDispatch"`
	ControlDisabled bool `json:"controlDisabled"`
	// Interference is "pressure" (default) or "uniform".
	Interference string `json:"interference"`
	// RateScale multiplies every open-loop group's arrival rate
	// (0 = 1) — the arrival-mix axis.
	RateScale float64 `json:"rateScale"`
	// BudgetDropTo, when > 0, schedules a budget change to that many
	// watts landing halfway into round BudgetDropRound — the cap
	// stimulus whose response latency Stat.CapResponseS measures.
	BudgetDropTo    float64 `json:"budgetDropTo"`
	BudgetDropRound int     `json:"budgetDropRound"`
	// Faults parameterizes the seeded stochastic fault model; nil
	// injects nothing. FaultSeed pins the model seed for every
	// replication of the cell (0 derives a fresh fault seed per
	// replication from the replication seed).
	Faults    *Faults `json:"faults"`
	FaultSeed int64   `json:"faultSeed"`
	// Groups are the workload groups (required, >= 1, unique names).
	Groups []Group `json:"groups"`
}

// Faults mirrors fleet.FaultConfig in JSON form (rates are mean faults
// per round; durations in seconds).
type Faults struct {
	Redispatch    bool     `json:"redispatch"`
	Racks         []string `json:"racks"`
	CrashRate     float64  `json:"crashRate"`
	RackRate      float64  `json:"rackRate"`
	ThrottleRate  float64  `json:"throttleRate"`
	StragglerRate float64  `json:"stragglerRate"`
	SagRate       float64  `json:"sagRate"`
	MeanOutageS   float64  `json:"meanOutageS"`
	MeanThrottleS float64  `json:"meanThrottleS"`
	MeanSlowS     float64  `json:"meanSlowS"`
	MeanSagS      float64  `json:"meanSagS"`
	ThrottleFloor int      `json:"throttleFloor"`
	SlowFactor    float64  `json:"slowFactor"`
	SagFactor     float64  `json:"sagFactor"`
}

// Group is one workload group of a cell: always the analytically exact
// synthetic app (sweeps are thousands of runs; real benchmark apps
// belong in single-shot -scenario runs), sized by BaseCost.
type Group struct {
	// Name is required and unique within the cell.
	Name string `json:"name"`
	// BaseCost sizes one baseline iteration in work units (0 = the
	// 6e6 default; smaller = faster service).
	BaseCost float64 `json:"baseCost"`
	// Instances is the group's initial instance count (>= 1 unless an
	// autoscaler is attached).
	Instances int `json:"instances"`
	// Load is constant | ramp | spike | saturate | none (default
	// constant); Rate is mean arrivals per quantum for open-loop loads.
	Load string  `json:"load"`
	Rate float64 `json:"rate"`
	// ReqIters sizes each request in stream iterations (0 = whole
	// stream).
	ReqIters int `json:"reqIters"`
	// Pressure is the group's co-residency contention pressure.
	Pressure float64 `json:"pressure"`
	// SLOP95 attaches the default hysteresis autoscaler provisioning
	// for this p95 bound in seconds (0 = no autoscaler); ScaleMax
	// bounds it (0 = total cluster cores).
	SLOP95   float64 `json:"sloP95"`
	ScaleMax int     `json:"scaleMax"`
}

// Guard rails: a grid is an experiment spec, not a denial-of-service
// vector — ParseGrid rejects anything past these bounds with an error
// (FuzzSweepGrid holds the never-panic contract over arbitrary bytes).
const (
	maxCells        = 4096
	maxReplications = 1 << 20
	maxRounds       = 100000
	maxMachines     = 4096
	maxInstances    = 4096
	maxRate         = 1e5
	minBaseCost     = 1e4
	maxBaseCost     = 1e10
)

// ParseGrid decodes and validates a grid spec. Unknown JSON fields are
// errors, so a typoed parameter cannot silently sweep nothing.
func ParseGrid(data []byte) (*Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: grid spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: grid spec: trailing data after the JSON object")
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

func (g *Grid) validate() error {
	if g.BaseSeed == 0 {
		g.BaseSeed = 1
	}
	if g.Replications == 0 {
		g.Replications = 1
	}
	if g.Replications < 1 || g.Replications > maxReplications {
		return fmt.Errorf("sweep: replications %d outside [1, %d]", g.Replications, maxReplications)
	}
	if g.Rounds < 1 || g.Rounds > maxRounds {
		return fmt.Errorf("sweep: rounds %d outside [1, %d]", g.Rounds, maxRounds)
	}
	if g.Warmup < 0 || g.Warmup >= g.Rounds {
		return fmt.Errorf("sweep: warmup %d outside [0, rounds %d)", g.Warmup, g.Rounds)
	}
	seen := map[string]bool{}
	cellCount := 1
	for i, ax := range g.Axes {
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %d (%q) has no values", i, ax.Param)
		}
		if seen[ax.Param] {
			return fmt.Errorf("sweep: duplicate axis %q", ax.Param)
		}
		seen[ax.Param] = true
		// Every axis value must apply cleanly to the base cell — a bad
		// value list fails at parse time, not mid-pool.
		for _, v := range ax.Values {
			probe := g.Base.clone()
			if err := applyParam(&probe, ax.Param, v); err != nil {
				return err
			}
		}
		if cellCount > maxCells/len(ax.Values) {
			return fmt.Errorf("sweep: grid exceeds %d cells", maxCells)
		}
		cellCount *= len(ax.Values)
	}
	// Validate every concrete cell: axis interactions (say, machines
	// from one axis and instances from another) must compose into a
	// constructible scenario.
	for ci := 0; ci < cellCount; ci++ {
		cell, _, err := g.CellAt(ci)
		if err != nil {
			return err
		}
		if err := cell.validate(); err != nil {
			return fmt.Errorf("sweep: cell %d (%s): %w", ci, g.CellLabel(ci), err)
		}
	}
	return nil
}

func (c *Cell) validate() error {
	if c.Machines == 0 {
		c.Machines = 2
	}
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.Machines < 1 || c.Machines > maxMachines {
		return fmt.Errorf("machines %d outside [1, %d]", c.Machines, maxMachines)
	}
	if c.Cores < 1 || c.Cores > 64 {
		return fmt.Errorf("cores %d outside [1, 64]", c.Cores)
	}
	if c.Workers < 0 || c.Workers > 256 {
		return fmt.Errorf("workers %d outside [0, 256]", c.Workers)
	}
	if c.ArbiterIntervalMs < 0 || c.ArbiterIntervalMs > 1000 {
		return fmt.Errorf("arbiterIntervalMs %v outside [0, 1000]", c.ArbiterIntervalMs)
	}
	if c.Fluid < 0 {
		return fmt.Errorf("fluid %d < 0", c.Fluid)
	}
	switch c.Interference {
	case "", "pressure", "uniform":
	default:
		return fmt.Errorf("unknown interference %q (pressure | uniform)", c.Interference)
	}
	if c.RateScale < 0 || c.RateScale > 1e3 {
		return fmt.Errorf("rateScale %v outside [0, 1000]", c.RateScale)
	}
	if c.BudgetDropTo < 0 {
		return fmt.Errorf("budgetDropTo %v < 0", c.BudgetDropTo)
	}
	if c.BudgetDropTo > 0 && (c.BudgetDropRound < 0 || c.BudgetDropRound > maxRounds) {
		return fmt.Errorf("budgetDropRound %d outside [0, %d]", c.BudgetDropRound, maxRounds)
	}
	if c.Faults != nil {
		f := c.Faults
		for _, r := range []struct {
			name string
			v    float64
		}{
			{"crashRate", f.CrashRate}, {"rackRate", f.RackRate},
			{"throttleRate", f.ThrottleRate}, {"stragglerRate", f.StragglerRate},
			{"sagRate", f.SagRate},
		} {
			if r.v < 0 || r.v > 100 {
				return fmt.Errorf("faults %s %v outside [0, 100]", r.name, r.v)
			}
		}
		for _, d := range []struct {
			name string
			v    float64
		}{
			{"meanOutageS", f.MeanOutageS}, {"meanThrottleS", f.MeanThrottleS},
			{"meanSlowS", f.MeanSlowS}, {"meanSagS", f.MeanSagS},
		} {
			if d.v < 0 || d.v > 1e6 {
				return fmt.Errorf("faults %s %v outside [0, 1e6]", d.name, d.v)
			}
		}
		if len(f.Racks) > 64 {
			return fmt.Errorf("faults has %d racks, max 64", len(f.Racks))
		}
	}
	if len(c.Groups) == 0 {
		return fmt.Errorf("cell has no groups")
	}
	names := map[string]bool{}
	for i, gr := range c.Groups {
		if gr.Name == "" {
			return fmt.Errorf("group %d has no name", i)
		}
		if names[gr.Name] {
			return fmt.Errorf("duplicate group %q", gr.Name)
		}
		names[gr.Name] = true
		if gr.BaseCost != 0 && (gr.BaseCost < minBaseCost || gr.BaseCost > maxBaseCost) {
			return fmt.Errorf("group %q baseCost %v outside [%v, %v]", gr.Name, gr.BaseCost, float64(minBaseCost), float64(maxBaseCost))
		}
		if gr.Instances < 0 || gr.Instances > maxInstances {
			return fmt.Errorf("group %q instances %d outside [0, %d]", gr.Name, gr.Instances, maxInstances)
		}
		if gr.Instances == 0 && gr.SLOP95 <= 0 {
			return fmt.Errorf("group %q has no instances and no autoscaler", gr.Name)
		}
		switch gr.Load {
		case "", "constant", "ramp", "spike", "saturate", "none":
		default:
			return fmt.Errorf("group %q unknown load %q (constant | ramp | spike | saturate | none)", gr.Name, gr.Load)
		}
		if gr.Rate < 0 || gr.Rate > maxRate {
			return fmt.Errorf("group %q rate %v outside [0, %v]", gr.Name, gr.Rate, float64(maxRate))
		}
		if gr.ReqIters < 0 || gr.ReqIters > 1e6 {
			return fmt.Errorf("group %q reqIters %d outside [0, 1e6]", gr.Name, gr.ReqIters)
		}
		if gr.Pressure < 0 || gr.Pressure > 100 {
			return fmt.Errorf("group %q pressure %v outside [0, 100]", gr.Name, gr.Pressure)
		}
		if gr.SLOP95 < 0 || gr.SLOP95 > 1e6 {
			return fmt.Errorf("group %q sloP95 %v outside [0, 1e6]", gr.Name, gr.SLOP95)
		}
		if gr.ScaleMax < 0 || gr.ScaleMax > maxInstances {
			return fmt.Errorf("group %q scaleMax %d outside [0, %d]", gr.Name, gr.ScaleMax, maxInstances)
		}
	}
	return nil
}

// clone deep-copies the cell so axis application never aliases the base.
func (c Cell) clone() Cell {
	out := c
	out.Groups = append([]Group(nil), c.Groups...)
	if c.Budget != nil {
		b := *c.Budget
		out.Budget = &b
	}
	if c.Faults != nil {
		f := *c.Faults
		f.Racks = append([]string(nil), c.Faults.Racks...)
		out.Faults = &f
	}
	return out
}

// asInt rejects fractional axis values for integer parameters.
func asInt(param string, v float64) (int, error) {
	if v != math.Trunc(v) || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("sweep: axis %q value %v is not an integer", param, v)
	}
	return int(v), nil
}

// applyParam overrides one cell parameter with an axis value.
func applyParam(c *Cell, param string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("sweep: axis %q value %v is not finite", param, v)
	}
	if group, field, ok := strings.Cut(param, "."); ok {
		for i := range c.Groups {
			if c.Groups[i].Name != group {
				continue
			}
			return applyGroupParam(&c.Groups[i], param, field, v)
		}
		return fmt.Errorf("sweep: axis %q names unknown group %q", param, group)
	}
	switch param {
	case "machines":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		c.Machines = n
	case "cores":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		c.Cores = n
	case "workers":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		c.Workers = n
	case "fluid":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		c.Fluid = n
	case "budget":
		b := v
		c.Budget = &b
	case "arbiterIntervalMs":
		c.ArbiterIntervalMs = v
	case "rateScale":
		c.RateScale = v
	case "budgetDropTo":
		c.BudgetDropTo = v
	case "budgetDropRound":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		c.BudgetDropRound = n
	case "faultSeed":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		c.FaultSeed = int64(n)
	default:
		return fmt.Errorf("sweep: unknown axis parameter %q", param)
	}
	return nil
}

func applyGroupParam(g *Group, param, field string, v float64) error {
	switch field {
	case "rate":
		g.Rate = v
	case "baseCost":
		g.BaseCost = v
	case "pressure":
		g.Pressure = v
	case "sloP95":
		g.SLOP95 = v
	case "instances":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		g.Instances = n
	case "reqIters":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		g.ReqIters = n
	case "scaleMax":
		n, err := asInt(param, v)
		if err != nil {
			return err
		}
		g.ScaleMax = n
	default:
		return fmt.Errorf("sweep: unknown group axis field %q in %q", field, param)
	}
	return nil
}

// CellCount is the cartesian size of the grid (1 with no axes).
func (g *Grid) CellCount() int {
	n := 1
	for _, ax := range g.Axes {
		n *= len(ax.Values)
	}
	return n
}

// CellValues returns cell i's axis coordinates in axis order (the last
// axis varies fastest across consecutive cells).
func (g *Grid) CellValues(i int) []float64 {
	vals := make([]float64, len(g.Axes))
	for a := len(g.Axes) - 1; a >= 0; a-- {
		n := len(g.Axes[a].Values)
		vals[a] = g.Axes[a].Values[i%n]
		i /= n
	}
	return vals
}

// CellAt materializes cell i: the base configuration with the cell's
// axis values applied.
func (g *Grid) CellAt(i int) (Cell, []float64, error) {
	vals := g.CellValues(i)
	cell := g.Base.clone()
	for a, ax := range g.Axes {
		if err := applyParam(&cell, ax.Param, vals[a]); err != nil {
			return Cell{}, nil, err
		}
	}
	return cell, vals, nil
}

// CellLabel renders cell i's axis coordinates, e.g.
// "arbiterIntervalMs=250,workers=4" ("base" with no axes).
func (g *Grid) CellLabel(i int) string {
	if len(g.Axes) == 0 {
		return "base"
	}
	vals := g.CellValues(i)
	parts := make([]string, len(g.Axes))
	for a, ax := range g.Axes {
		parts[a] = ax.Param + "=" + strconv.FormatFloat(vals[a], 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// splitmix64 is the SplitMix64 mixing function — one invertible,
// full-avalanche round. Replication seeds derive from it so that
// neighboring (cell, replication) pairs land on statistically unrelated
// streams, and so seed derivation is a frozen, documented function of
// the spec alone (the byte-determinism contract).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed is the replication seed for (baseSeed, cell, rep):
// three chained splitmix64 rounds folding in the cell and replication
// indices. It is non-negative and never zero, so it can seed APIs that
// treat 0 as "pick a default".
func DeriveSeed(base int64, cell, rep int) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ uint64(cell+1))
	h = splitmix64(h ^ uint64(rep+1))
	s := int64(h &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// deriveSubSeed splits one replication seed into independent per-role
// streams (group arrival processes, the fault model).
func deriveSubSeed(seed int64, role int) int64 {
	s := int64(splitmix64(uint64(seed)^uint64(role+1)*0xD1B54A32D192ED03) &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}
