package sweep

import (
	"math"
	"testing"

	"repro/internal/calibrate"
	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/platform"
)

// TestSweepOracleContainment is the statistical upgrade of the
// single-seed TestScenarioMatchesMixOracle (internal/fleet): a
// 200-replication Monte Carlo sweep of the two-group open-loop scenario
// asserts the 95% confidence interval of the measured per-group mean
// sojourn and fleet mean power contains the composed M/G/1 oracle
// prediction — tolerance-free, because the error bars come from the
// experiment itself. The fast-path 10%/2% single-seed checks stay in
// internal/fleet; this test is the one with error bars.
//
// The replication horizon matters: per-replication means carry a
// finite-horizon bias of order 1/rounds, so rounds must be large enough
// that the residual bias sits well inside the CI that 200 replications
// produce. The whole sweep is byte-deterministic for the fixed base
// seed, so a pass is a pass forever — this cannot flake, only detect
// genuine behavior drift.
func TestSweepOracleContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("200-replication Monte Carlo sweep")
	}
	const (
		reps       = 200
		rounds     = 1200
		warmup     = 50
		iters      = 20
		fastLambda = 2.4
		slowLambda = 1.2
		fastCost   = 3e6
		slowCost   = 6e6
		// Deterministic baseline service times at the full 2.4 GHz.
		fastService = iters * fastCost / (2.4 * platform.SpeedPerGHz) // 0.25 s
		slowService = iters * slowCost / (2.4 * platform.SpeedPerGHz) // 0.5 s
	)
	unlimited := 0.0
	g := &Grid{
		Name:         "oracle-mix",
		BaseSeed:     7,
		Replications: reps,
		Rounds:       rounds,
		Warmup:       warmup,
		Base: Cell{
			Machines: 2,
			Cores:    2,
			Budget:   &unlimited,
			// The oracle's regime: open-loop baseline service, random
			// split dispatch, uniform interference.
			ControlDisabled: true,
			SplitDispatch:   true,
			Interference:    "uniform",
			Groups: []Group{
				{Name: "fast", BaseCost: fastCost, Instances: 2, Rate: fastLambda, ReqIters: iters},
				{Name: "slow", BaseCost: slowCost, Instances: 2, Rate: slowLambda, ReqIters: iters},
			},
		},
	}
	if err := g.validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}

	prof, err := calibrate.Run(fleet.NewSynthetic(fleet.SyntheticOptions{BaseCost: slowCost}), calibrate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := cluster.NewOracle(2, 2, prof, platform.DefaultPowerModel(), platform.Frequencies[0])
	if err != nil {
		t.Fatal(err)
	}
	pred, err := oracle.PredictMix([]cluster.GroupStation{
		{Name: "fast", Instances: 2, Lambda: fastLambda, Service: fastService},
		{Name: "slow", Instances: 2, Lambda: slowLambda, Service: slowService},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Stable {
		t.Fatalf("oracle says mix unstable; test scenario is broken: %+v", pred)
	}

	// ci95 computes the replication mean and 95% CI half-width of one
	// metric over the single cell.
	stats := res.Stats[0]
	ci95 := func(get func(*Stat) float64) (mean, half float64) {
		var sum float64
		for i := range stats {
			sum += get(&stats[i])
		}
		mean = sum / float64(len(stats))
		var sq float64
		for i := range stats {
			d := get(&stats[i]) - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(len(stats)-1))
		return mean, 1.96 * std / math.Sqrt(float64(len(stats)))
	}

	for gi, want := range []float64{pred.Groups[0].MeanSojourn, pred.Groups[1].MeanSojourn} {
		gi := gi
		name := g.Base.Groups[gi].Name
		mean, half := ci95(func(s *Stat) float64 { return s.Groups[gi].MeanSojourn })
		t.Logf("group %s: measured %.5f s ± %.5f (95%% CI over %d reps), oracle %.5f s",
			name, mean, half, reps, want)
		if math.Abs(mean-want) > half {
			t.Errorf("group %s mean sojourn CI [%.5f, %.5f] does not contain oracle prediction %.5f s",
				name, mean-half, mean+half, want)
		}
	}
	mean, half := ci95(func(s *Stat) float64 { return s.MeanPower })
	t.Logf("power: measured %.3f W ± %.3f (95%% CI over %d reps), oracle %.3f W", mean, half, reps, pred.PowerWatts)
	if math.Abs(mean-pred.PowerWatts) > half {
		t.Errorf("mean power CI [%.3f, %.3f] does not contain oracle prediction %.3f W",
			mean-half, mean+half, pred.PowerWatts)
	}
}
