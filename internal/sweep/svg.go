package sweep

import (
	"io"

	"repro/internal/plot"
)

// trendMetrics are the metrics that get a line panel in the sweep
// figure: the headline performance, power, and control-churn trends the
// arbiter study reads off. Metrics absent from a grid's canonical list
// are skipped (never happens today — these are all fleet-level).
var trendMetrics = []struct {
	name  string
	title string
	unit  string
}{
	{"mean_sojourn_s", "Mean sojourn vs cell", "s"},
	{"p95_s", "P95 sojourn vs cell", "s"},
	{"mean_power_w", "Mean power vs cell", "W"},
	{"cap_response_s", "Cap-response latency vs cell", "s"},
	{"knob_switches", "Knob churn vs cell", ""},
	{"scale_actions", "Autoscale actions vs cell", ""},
}

// WriteSVG renders the sweep's trend figure: per headline metric a line
// panel of mean with the 95% CI bounds over cell index (cells in
// canonical grid order), plus a labeled bar panel of mean sojourn so
// the cell → configuration mapping is readable on the figure itself.
func WriteSVG(w io.Writer, res *Result) error {
	ms := metricsFor(res.Grid)
	index := map[string]int{}
	for i, m := range ms {
		index[m.Name] = i
	}
	var panels []plot.Panel
	for _, tm := range trendMetrics {
		mi, ok := index[tm.name]
		if !ok {
			continue
		}
		mean := make([]float64, len(res.Aggregates))
		lo := make([]float64, len(res.Aggregates))
		hi := make([]float64, len(res.Aggregates))
		for ci, agg := range res.Aggregates {
			mean[ci] = agg.Mean[mi]
			lo[ci] = agg.Mean[mi] - agg.CI95[mi]
			hi[ci] = agg.Mean[mi] + agg.CI95[mi]
		}
		panels = append(panels, plot.Panel{
			Title: tm.title,
			Unit:  tm.unit,
			Series: []plot.Series{
				{Name: "mean", Values: mean},
				{Name: "ci95 lo", Values: lo},
				{Name: "ci95 hi", Values: hi},
			},
		})
	}
	if mi, ok := index["mean_sojourn_s"]; ok {
		labels := make([]string, len(res.Aggregates))
		bars := make([]float64, len(res.Aggregates))
		for ci, agg := range res.Aggregates {
			labels[ci] = agg.Label
			bars[ci] = agg.Mean[mi]
		}
		panels = append(panels, plot.Panel{
			Title:  "Mean sojourn by cell",
			Unit:   "s",
			Labels: labels,
			Bars:   bars,
		})
	}
	title := "sweep: " + res.Grid.Name
	if res.Grid.Name == "" {
		title = "sweep"
	}
	return plot.WriteSVG(w, title, panels)
}
