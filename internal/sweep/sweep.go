package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/calibrate"
	"repro/internal/fleet"
	"repro/internal/workload"
)

// Stat is one replication's measured row: what a single seeded run of
// one grid cell produced. Slices of Stats aggregate into the per-cell
// mean / stddev / CI summary (Aggregate).
type Stat struct {
	Cell int   // cell index in canonical grid order
	Rep  int   // replication index within the cell
	Seed int64 // the derived replication seed (DeriveSeed)

	// Request conservation counters over the whole run.
	Arrivals    int
	Completions int
	Aborted     int
	Dropped     int // fault-displaced requests dropped (0 without faults)
	QueueDepth  int // backlog still in the system at the final round close

	// MeanSojourn is the mean request latency in seconds over rounds
	// past the warmup (completion-weighted across rounds); P50/P95/P99
	// are full-run percentiles.
	MeanSojourn float64
	P50, P95    float64
	P99         float64

	// MeanPower (W) averages rounds past the warmup; EnergyJ is the
	// whole run's integral.
	MeanPower float64
	EnergyJ   float64

	// SLOViolations counts group-rounds past the warmup whose p95
	// exceeded the group's sloP95 (0 when no group declares one).
	SLOViolations int
	// ScaleActions counts autoscaler placement actions; KnobSwitches
	// counts host DVFS transitions (the arbiter's knob churn).
	ScaleActions int
	KnobSwitches int

	// FaultsLanded / Redispatched mirror the resilience accounting
	// (all zero without a fault model).
	FaultsLanded int
	Redispatched int

	// CapResponseS is the seconds from the mid-quantum budget drop
	// until the close of the first round whose p95 returned to the
	// pre-drop mean p95; rounds-after-drop (censored) when it never
	// recovers, -1 when the cell schedules no drop.
	CapResponseS float64

	// Groups are the per-group slices, in cell declaration order.
	Groups []GroupStat
}

// GroupStat is one workload group's slice of a replication.
type GroupStat struct {
	Name        string
	Completions int
	// MeanSojourn is the group's completion-weighted mean latency over
	// rounds past the warmup; P95 is the group's full-run percentile.
	MeanSojourn float64
	P95         float64
}

// Options tunes a Run.
type Options struct {
	// Procs bounds the worker pool (0 = runtime.NumCPU()).
	Procs int
	// Replications / Rounds override the grid's values when > 0 (the
	// CLI's -reps/-rounds, and the fuzz harness's clamp).
	Replications int
	Rounds       int
	// Progress, when non-nil, is called after every finished
	// replication with (done, total). Calls are serialized.
	Progress func(done, total int)
}

// Result is a completed sweep: the grid, every replication's Stat in
// [cell][rep] order, and the per-cell aggregates.
type Result struct {
	Grid         *Grid
	Replications int
	Rounds       int
	Warmup       int
	Stats        [][]Stat
	Aggregates   []Aggregate
}

// Run executes the grid: Replications seeded runs of every cell on a
// Procs-bounded worker pool. The result is independent of the worker
// count and interleaving — each replication derives its own seed and
// writes its own preassigned slot, and aggregation runs afterwards in
// canonical order.
func Run(g *Grid, opt Options) (*Result, error) {
	reps := g.Replications
	if opt.Replications > 0 {
		reps = opt.Replications
	}
	rounds, warmup := g.Rounds, g.Warmup
	if opt.Rounds > 0 {
		rounds = opt.Rounds
		if warmup >= rounds {
			warmup = rounds / 2
		}
	}
	procs := opt.Procs
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	cells := g.CellCount()
	// Materialize and re-validate every cell up front: workers only see
	// constructible configurations, and a spec error surfaces before
	// any replication runs.
	cellCfgs := make([]Cell, cells)
	for ci := 0; ci < cells; ci++ {
		cell, _, err := g.CellAt(ci)
		if err != nil {
			return nil, err
		}
		if err := cell.validate(); err != nil {
			return nil, fmt.Errorf("sweep: cell %d (%s): %w", ci, g.CellLabel(ci), err)
		}
		cellCfgs[ci] = cell
	}

	res := &Result{Grid: g, Replications: reps, Rounds: rounds, Warmup: warmup}
	res.Stats = make([][]Stat, cells)
	for ci := range res.Stats {
		res.Stats[ci] = make([]Stat, reps)
	}

	profiles := &profileCache{entries: map[float64]*calibrate.Profile{}}
	total := cells * reps
	type job struct{ cell, rep int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				st, err := runReplication(g, cellCfgs[j.cell], j.cell, j.rep, rounds, warmup, profiles)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("sweep: cell %d (%s) rep %d: %w", j.cell, g.CellLabel(j.cell), j.rep, err)
				}
				res.Stats[j.cell][j.rep] = st
				done++
				if opt.Progress != nil {
					opt.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	for ci := 0; ci < cells; ci++ {
		for r := 0; r < reps; r++ {
			jobs <- job{ci, r}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Aggregates = aggregate(res)
	return res, nil
}

// profileCache shares calibrated synthetic profiles across
// replications: calibration is deterministic per BaseCost and profiles
// are read-only once built, so thousands of replications pay for each
// distinct cost exactly once.
type profileCache struct {
	mu      sync.Mutex
	entries map[float64]*calibrate.Profile
}

func (p *profileCache) get(baseCost float64) (*calibrate.Profile, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prof, ok := p.entries[baseCost]; ok {
		return prof, nil
	}
	probe := fleet.NewSynthetic(fleet.SyntheticOptions{BaseCost: baseCost})
	prof, err := calibrate.Run(probe, calibrate.Options{})
	if err != nil {
		return nil, err
	}
	p.entries[baseCost] = prof
	return prof, nil
}

// seed roles for deriveSubSeed: groups use their index, the fault model
// a role past any plausible group count.
const faultSeedRole = 1 << 20

// buildSupervisor materializes one replication's fleet: the cell
// configuration with every stochastic stream seeded from the
// replication seed.
func buildSupervisor(cell Cell, seed int64, profiles *profileCache) (*fleet.Supervisor, error) {
	sc := fleet.Scenario{
		Machines:        cell.Machines,
		CoresPerMachine: cell.Cores,
		Budget:          400,
		Workers:         cell.Workers,
		ArbiterInterval: time.Duration(cell.ArbiterIntervalMs * float64(time.Millisecond)),
		Fluid:           cell.Fluid,
		EpochDispatch:   cell.EpochDispatch,
		SplitDispatch:   cell.SplitDispatch,
		ControlDisabled: cell.ControlDisabled,
	}
	if cell.Budget != nil {
		sc.Budget = *cell.Budget
	}
	if cell.Interference == "uniform" {
		sc.Interference = fleet.UniformShare{}
	}
	rateScale := cell.RateScale
	if rateScale == 0 {
		rateScale = 1
	}
	for gi, gr := range cell.Groups {
		prof, err := profiles.get(gr.BaseCost)
		if err != nil {
			return nil, err
		}
		opts := fleet.SyntheticOptions{BaseCost: gr.BaseCost}
		wg := fleet.WorkloadGroup{
			Name:      gr.Name,
			NewApp:    func() (workload.App, error) { return fleet.NewSynthetic(opts), nil },
			Profile:   prof,
			Instances: gr.Instances,
			Pressure:  gr.Pressure,
			SLO:       fleet.SLO{P95: gr.SLOP95},
		}
		gseed := deriveSubSeed(seed, gi)
		rate := gr.Rate * rateScale
		var gen *fleet.LoadGen
		switch gr.Load {
		case "", "constant":
			gen = fleet.NewConstantLoad(gseed, rate)
		case "ramp":
			gen = fleet.NewRampLoad(gseed, 0, rate, 15)
		case "spike":
			gen = fleet.NewSpikeLoad(gseed, rate/3, rate*2, 10, 3)
		case "saturate":
			gen = fleet.NewSaturatingLoad(2)
		case "none":
			gen = nil
		}
		if gen != nil {
			gen = gen.WithRequestIters(gr.ReqIters)
		}
		wg.Load = gen
		sc.Groups = append(sc.Groups, wg)
	}
	if cell.Faults != nil {
		f := cell.Faults
		fseed := cell.FaultSeed
		if fseed == 0 {
			fseed = deriveSubSeed(seed, faultSeedRole)
		}
		sc.Faults = &fleet.FaultOptions{
			Redispatch: f.Redispatch,
			Model: fleet.NewSeededFaults(fleet.FaultConfig{
				Seed:          fseed,
				Racks:         f.Racks,
				CrashRate:     f.CrashRate,
				RackRate:      f.RackRate,
				ThrottleRate:  f.ThrottleRate,
				StragglerRate: f.StragglerRate,
				SagRate:       f.SagRate,
				MeanOutage:    time.Duration(f.MeanOutageS * float64(time.Second)),
				MeanThrottle:  time.Duration(f.MeanThrottleS * float64(time.Second)),
				MeanSlow:      time.Duration(f.MeanSlowS * float64(time.Second)),
				MeanSag:       time.Duration(f.MeanSagS * float64(time.Second)),
				ThrottleFloor: f.ThrottleFloor,
				SlowFactor:    f.SlowFactor,
				SagFactor:     f.SagFactor,
			}),
		}
	}
	sup, err := fleet.NewScenario(sc)
	if err != nil {
		return nil, err
	}
	for gi, gr := range cell.Groups {
		if gr.SLOP95 <= 0 || gr.ScaleMax <= 0 {
			continue
		}
		scaler, err := fleet.NewHysteresisScaler(fleet.HysteresisConfig{
			SLO: fleet.SLO{P95: gr.SLOP95},
			Max: gr.ScaleMax,
		})
		if err != nil {
			return nil, err
		}
		if err := sup.AutoscaleGroup(gi, scaler, time.Second/2); err != nil {
			return nil, err
		}
	}
	return sup, nil
}

// runReplication executes one seeded run of one cell and extracts its
// Stat row.
func runReplication(g *Grid, cell Cell, ci, rep, rounds, warmup int, profiles *profileCache) (Stat, error) {
	seed := DeriveSeed(g.BaseSeed, ci, rep)
	sup, err := buildSupervisor(cell, seed, profiles)
	if err != nil {
		return Stat{}, err
	}
	const quantum = time.Second
	dropRound := -1
	if cell.BudgetDropTo > 0 {
		dropRound = cell.BudgetDropRound
		at := time.Unix(0, 0).
			Add(time.Duration(dropRound) * quantum).
			Add(quantum / 2)
		sup.SetBudgetAt(at, cell.BudgetDropTo)
	}
	if err := sup.Run(nil, rounds); err != nil {
		return Stat{}, err
	}
	rep2 := sup.Report()
	st := extractStat(cell, rep2, warmup, dropRound)
	st.Cell, st.Rep, st.Seed = ci, rep, seed
	st.MeanPower = sup.MeanPowerOver(warmup, rounds)
	st.ScaleActions = sup.ScaleMoves()
	st.KnobSwitches = sup.KnobSwitches()
	return st, nil
}

// extractStat reduces a fleet report to the replication's Stat row.
func extractStat(cell Cell, rep fleet.Report, warmup, dropRound int) Stat {
	st := Stat{
		Completions:  rep.Completions,
		Aborted:      rep.Aborted,
		EnergyJ:      rep.TotalEnergyJ,
		P50:          rep.P50Latency,
		P95:          rep.P95Latency,
		P99:          rep.P99Latency,
		CapResponseS: -1,
	}
	if rep.Resilience != nil {
		st.Dropped = rep.Resilience.Dropped
		st.Redispatched = rep.Resilience.Redispatched
		st.FaultsLanded = len(rep.Resilience.Faults)
	}
	var latSum float64
	var latN int
	groupLatSum := make([]float64, len(cell.Groups))
	groupLatN := make([]int, len(cell.Groups))
	for r, rs := range rep.Rounds {
		st.Arrivals += rs.Arrivals
		if r < warmup {
			continue
		}
		latSum += rs.LatencyMean * float64(rs.Completions)
		latN += rs.Completions
		for gi, gs := range rs.Groups {
			if gi >= len(cell.Groups) {
				break
			}
			groupLatSum[gi] += gs.LatencyMean * float64(gs.Completions)
			groupLatN[gi] += gs.Completions
			if slo := cell.Groups[gi].SLOP95; slo > 0 && gs.LatencyP95 > slo {
				st.SLOViolations++
			}
		}
	}
	if n := len(rep.Rounds); n > 0 {
		st.QueueDepth = rep.Rounds[n-1].QueueDepth
	}
	if latN > 0 {
		st.MeanSojourn = latSum / float64(latN)
	}
	for gi, gr := range cell.Groups {
		gs := GroupStat{Name: gr.Name}
		if gi < len(rep.PerGroup) {
			gs.Completions = rep.PerGroup[gi].Completions
			gs.P95 = rep.PerGroup[gi].P95Latency
		}
		if groupLatN[gi] > 0 {
			gs.MeanSojourn = groupLatSum[gi] / float64(groupLatN[gi])
		}
		st.Groups = append(st.Groups, gs)
	}
	if dropRound >= 0 && dropRound < len(rep.Rounds) {
		st.CapResponseS = capResponse(rep.Rounds, warmup, dropRound)
	}
	return st
}

// capResponse measures how long the fleet's tail latency took to return
// to its pre-drop level after the mid-quantum budget drop: seconds from
// the drop instant (halfway into dropRound) to the close of the first
// subsequent round whose p95 is back at or below the pre-drop mean p95.
// Censored at the run end when it never recovers.
func capResponse(rounds []fleet.RoundStats, warmup, dropRound int) float64 {
	var pre float64
	n := 0
	for r := warmup; r < dropRound && r < len(rounds); r++ {
		pre += rounds[r].LatencyP95
		n++
	}
	if n == 0 {
		// No pre-drop window to compare against; fall back to the first
		// round's p95.
		pre, n = rounds[0].LatencyP95, 1
	}
	pre /= float64(n)
	for r := dropRound; r < len(rounds); r++ {
		if rounds[r].LatencyP95 <= pre {
			return float64(r-dropRound) + 0.5
		}
	}
	return float64(len(rounds)-dropRound) - 0.5
}

// Metric is one aggregated column: a name and its per-replication
// extractor. The metric list is canonical per grid (metricsFor), so the
// CSV schema is a pure function of the spec.
type Metric struct {
	Name string
	Get  func(*Stat) float64
}

// metricsFor returns the grid's metric columns: the fleet-level set
// plus mean sojourn / p95 / completions per workload group of the base
// cell (group axes never add or remove groups, so the set is constant
// across cells).
func metricsFor(g *Grid) []Metric {
	ms := []Metric{
		{"mean_sojourn_s", func(s *Stat) float64 { return s.MeanSojourn }},
		{"p50_s", func(s *Stat) float64 { return s.P50 }},
		{"p95_s", func(s *Stat) float64 { return s.P95 }},
		{"p99_s", func(s *Stat) float64 { return s.P99 }},
		{"mean_power_w", func(s *Stat) float64 { return s.MeanPower }},
		{"energy_j", func(s *Stat) float64 { return s.EnergyJ }},
		{"completions", func(s *Stat) float64 { return float64(s.Completions) }},
		{"aborted", func(s *Stat) float64 { return float64(s.Aborted) }},
		{"dropped", func(s *Stat) float64 { return float64(s.Dropped) }},
		{"queue_depth", func(s *Stat) float64 { return float64(s.QueueDepth) }},
		{"slo_violations", func(s *Stat) float64 { return float64(s.SLOViolations) }},
		{"scale_actions", func(s *Stat) float64 { return float64(s.ScaleActions) }},
		{"knob_switches", func(s *Stat) float64 { return float64(s.KnobSwitches) }},
		{"faults_landed", func(s *Stat) float64 { return float64(s.FaultsLanded) }},
		{"cap_response_s", func(s *Stat) float64 { return s.CapResponseS }},
	}
	for gi, gr := range g.Base.Groups {
		gi := gi
		ms = append(ms,
			Metric{"g_" + gr.Name + "_mean_sojourn_s", func(s *Stat) float64 { return s.Groups[gi].MeanSojourn }},
			Metric{"g_" + gr.Name + "_p95_s", func(s *Stat) float64 { return s.Groups[gi].P95 }},
			Metric{"g_" + gr.Name + "_completions", func(s *Stat) float64 { return float64(s.Groups[gi].Completions) }},
		)
	}
	return ms
}

// Aggregate is one cell's summary: per metric (in metricsFor order) the
// replication mean, sample standard deviation, and the 95% confidence
// half-width 1.96·s/√n.
type Aggregate struct {
	Cell   int
	Label  string
	Values []float64 // the cell's axis coordinates, in axis order
	N      int
	Mean   []float64
	Std    []float64
	CI95   []float64
}

// aggregate folds every cell's Stat rows in replication order — fixed
// iteration order keeps the floating-point sums, and therefore the CSV
// bytes, identical at any worker count.
func aggregate(res *Result) []Aggregate {
	ms := metricsFor(res.Grid)
	out := make([]Aggregate, len(res.Stats))
	for ci, stats := range res.Stats {
		agg := Aggregate{
			Cell:   ci,
			Label:  res.Grid.CellLabel(ci),
			Values: res.Grid.CellValues(ci),
			N:      len(stats),
			Mean:   make([]float64, len(ms)),
			Std:    make([]float64, len(ms)),
			CI95:   make([]float64, len(ms)),
		}
		n := float64(len(stats))
		for mi, m := range ms {
			var sum float64
			for ri := range stats {
				sum += m.Get(&stats[ri])
			}
			mean := sum / n
			var sq float64
			for ri := range stats {
				d := m.Get(&stats[ri]) - mean
				sq += d * d
			}
			std := 0.0
			if len(stats) > 1 {
				std = math.Sqrt(sq / (n - 1))
			}
			agg.Mean[mi] = mean
			agg.Std[mi] = std
			agg.CI95[mi] = 1.96 * std / math.Sqrt(n)
		}
		out[ci] = agg
	}
	return out
}

// MetricIndex resolves a metric name in the grid's canonical metric
// order (-1 when unknown) — test and tooling sugar over the Aggregate
// slices.
func (r *Result) MetricIndex(name string) int {
	for i, m := range metricsFor(r.Grid) {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// CellsSorted returns the aggregate rows sorted by the given metric's
// mean, ascending — a convenience for reporting the best/worst cells.
func (r *Result) CellsSorted(metric string) []Aggregate {
	mi := r.MetricIndex(metric)
	out := append([]Aggregate(nil), r.Aggregates...)
	if mi < 0 {
		return out
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Mean[mi] < out[j].Mean[mi] })
	return out
}
