package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// compareGolden checks got against the named golden file, rewriting it
// under -update. Goldens pin the CSV schema byte for byte — a diff here
// is a schema change, which docs/SWEEP_FORMAT.md must document.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test -run %s -update): %v", path, t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden; if the schema change is intentional, update docs/SWEEP_FORMAT.md and run go test -update.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// testGridJSON is a small two-axis grid exercising axis application,
// the budget-drop stimulus, and group-scoped axes.
const testGridJSON = `{
  "name": "test-grid",
  "baseSeed": 42,
  "replications": 3,
  "rounds": 12,
  "warmup": 3,
  "base": {
    "machines": 2,
    "cores": 2,
    "budget": 400,
    "budgetDropTo": 340,
    "budgetDropRound": 6,
    "groups": [
      {"name": "web", "baseCost": 3000000, "instances": 2, "rate": 3, "reqIters": 20},
      {"name": "batch", "baseCost": 6000000, "instances": 2, "rate": 1, "reqIters": 20}
    ]
  },
  "axes": [
    {"param": "arbiterIntervalMs", "values": [1000, 250]},
    {"param": "web.rate", "values": [2, 4]}
  ]
}`

func testGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := ParseGrid([]byte(testGridJSON))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSweepDeterministicAcrossProcs pins the byte-determinism contract:
// the same grid and base seed produce an identical CSV whether the pool
// runs one worker or eight (run under -race, this also holds the pool's
// data-race cleanliness).
func TestSweepDeterministicAcrossProcs(t *testing.T) {
	g1 := testGrid(t)
	r1, err := Run(g1, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	g8 := testGrid(t)
	r8, err := Run(g8, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b8 bytes.Buffer
	if err := WriteCSV(&b1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b8, r8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Errorf("sweep CSV differs between -procs 1 and -procs 8:\nprocs 1:\n%s\nprocs 8:\n%s", b1.String(), b8.String())
	}
	if b1.Len() == 0 {
		t.Error("sweep CSV is empty")
	}
}

// TestSweepGolden pins the CSV schema and the aggregated values byte
// for byte (the engine is deterministic, so values golden cleanly), and
// the -hdr schema line with them.
func TestSweepGolden(t *testing.T) {
	g := testGrid(t)
	res, err := Run(g, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "sweep.csv", buf.Bytes())
	compareGolden(t, "sweep_hdr.txt", []byte(Header(g)+"\n"))
}

// TestSweepSVG smoke-checks the trend figure: well-formed SVG with one
// panel per headline metric plus the labeled bar panel.
func TestSweepSVG(t *testing.T) {
	g := testGrid(t)
	res, err := Run(g, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("not an SVG document:\n%.200s", svg)
	}
	for _, want := range []string{"Mean sojourn vs cell", "Knob churn vs cell", "Mean sojourn by cell", "arbiterIntervalMs=250"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

// TestDeriveSeed pins the seed-derivation function: documented values
// (docs/SWEEP_FORMAT.md), sensitivity to every input, and the
// no-zero/no-negative contract.
func TestDeriveSeed(t *testing.T) {
	// Frozen values — changing DeriveSeed changes every sweep's bytes,
	// so it must be deliberate.
	if got := DeriveSeed(1, 0, 0); got != 8112600223918159332 {
		t.Errorf("DeriveSeed(1,0,0) = %d, want 8112600223918159332", got)
	}
	seen := map[int64]bool{}
	for cell := 0; cell < 8; cell++ {
		for rep := 0; rep < 64; rep++ {
			s := DeriveSeed(7, cell, rep)
			if s <= 0 {
				t.Fatalf("DeriveSeed(7,%d,%d) = %d, not positive", cell, rep, s)
			}
			if seen[s] {
				t.Fatalf("DeriveSeed(7,%d,%d) = %d collides", cell, rep, s)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(2, 2, 3) {
		t.Error("base seed does not influence the derived seed")
	}
}

// TestCellEnumeration pins the canonical cell order: the last axis
// varies fastest, labels match coordinates.
func TestCellEnumeration(t *testing.T) {
	g := testGrid(t)
	if got := g.CellCount(); got != 4 {
		t.Fatalf("CellCount = %d, want 4", got)
	}
	wantLabels := []string{
		"arbiterIntervalMs=1000,web.rate=2",
		"arbiterIntervalMs=1000,web.rate=4",
		"arbiterIntervalMs=250,web.rate=2",
		"arbiterIntervalMs=250,web.rate=4",
	}
	for i, want := range wantLabels {
		if got := g.CellLabel(i); got != want {
			t.Errorf("CellLabel(%d) = %q, want %q", i, got, want)
		}
	}
	cell, vals, err := g.CellAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 250 || vals[1] != 2 {
		t.Errorf("CellAt(2) coords = %v, want [250 2]", vals)
	}
	if cell.ArbiterIntervalMs != 250 || cell.Groups[0].Rate != 2 {
		t.Errorf("CellAt(2) cell = %+v", cell)
	}
	if g.Base.Groups[0].Rate != 3 {
		t.Errorf("axis application mutated the base cell: %+v", g.Base.Groups[0])
	}
}

// TestParseGridRejects is the validation table: every malformed spec
// errors with a message naming the problem, never panics.
func TestParseGridRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"empty", ``, "grid spec"},
		{"not json", `nope`, "grid spec"},
		{"trailing data", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}} extra`, "trailing"},
		{"unknown field", `{"rounds": 5, "bogus": 1, "base": {"groups": [{"name": "a", "instances": 1}]}}`, "bogus"},
		{"no rounds", `{"base": {"groups": [{"name": "a", "instances": 1}]}}`, "rounds"},
		{"warmup past rounds", `{"rounds": 5, "warmup": 5, "base": {"groups": [{"name": "a", "instances": 1}]}}`, "warmup"},
		{"no groups", `{"rounds": 5, "base": {}}`, "no groups"},
		{"unnamed group", `{"rounds": 5, "base": {"groups": [{"instances": 1}]}}`, "no name"},
		{"duplicate group", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}, {"name": "a", "instances": 1}]}}`, "duplicate group"},
		{"no instances no scaler", `{"rounds": 5, "base": {"groups": [{"name": "a"}]}}`, "no instances"},
		{"bad load", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1, "load": "warp"}]}}`, "unknown load"},
		{"bad interference", `{"rounds": 5, "base": {"interference": "psychic", "groups": [{"name": "a", "instances": 1}]}}`, "interference"},
		{"axis no values", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "workers"}]}`, "no values"},
		{"duplicate axis", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "workers", "values": [1]}, {"param": "workers", "values": [2]}]}`, "duplicate axis"},
		{"unknown axis", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "wat", "values": [1]}]}`, "unknown axis"},
		{"unknown axis group", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "b.rate", "values": [1]}]}`, "unknown group"},
		{"fractional int axis", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "workers", "values": [1.5]}]}`, "not an integer"},
		{"axis breaks cell", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "machines", "values": [-1]}]}`, "machines"},
		{"too many cells", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [
			{"param": "machines", "values": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]},
			{"param": "cores", "values": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]},
			{"param": "workers", "values": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]},
			{"param": "fluid", "values": [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]}]}`, "cells"},
		{"nan axis", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}, "axes": [{"param": "rateScale", "values": [1e999]}]}`, "grid spec"},
		{"huge replications", `{"rounds": 5, "replications": 99999999, "base": {"groups": [{"name": "a", "instances": 1}]}}`, "replications"},
		{"huge rate", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1, "rate": 1e9}]}}`, "rate"},
		{"tiny baseCost", `{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1, "baseCost": 10}]}}`, "baseCost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGrid([]byte(tc.json))
			if err == nil {
				t.Fatalf("ParseGrid accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseGridDefaults pins the spec defaults: seed 1, one
// replication, 2x2 cluster.
func TestParseGridDefaults(t *testing.T) {
	g, err := ParseGrid([]byte(`{"rounds": 5, "base": {"groups": [{"name": "a", "instances": 1}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.BaseSeed != 1 || g.Replications != 1 {
		t.Errorf("defaults: baseSeed %d replications %d, want 1 1", g.BaseSeed, g.Replications)
	}
	if g.CellCount() != 1 || g.CellLabel(0) != "base" {
		t.Errorf("axis-free grid: count %d label %q", g.CellCount(), g.CellLabel(0))
	}
	cell, _, err := g.CellAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.validate(); err != nil {
		t.Fatal(err)
	}
	if cell.Machines != 2 || cell.Cores != 2 {
		t.Errorf("cell defaults: %d machines %d cores, want 2 2", cell.Machines, cell.Cores)
	}
}

// TestExec drives the shared CLI surface end to end: grid file in, CSV
// + SVG files out, -hdr short-circuit, and error paths for a missing or
// malformed grid.
func TestExec(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(testGridJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "out.csv")
	svgPath := filepath.Join(dir, "out.svg")
	var log bytes.Buffer
	err := Exec(ExecConfig{GridPath: gridPath, Procs: 2, OutPath: csvPath, PlotPath: svgPath, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	if !bytes.HasPrefix(csv, []byte(Header(g)+"\n")) {
		t.Errorf("CSV does not start with the schema header:\n%.120s", csv)
	}
	if svg, err := os.ReadFile(svgPath); err != nil || !bytes.Contains(svg, []byte("</svg>")) {
		t.Errorf("SVG output missing or truncated: %v", err)
	}
	if !strings.Contains(log.String(), "replications") {
		t.Errorf("no progress logged: %q", log.String())
	}

	hdrPath := filepath.Join(dir, "hdr.csv")
	if err := Exec(ExecConfig{GridPath: gridPath, Hdr: true, OutPath: hdrPath}); err != nil {
		t.Fatal(err)
	}
	if hdr, err := os.ReadFile(hdrPath); err != nil || string(hdr) != Header(g)+"\n" {
		t.Errorf("-hdr output = %q (%v), want the schema line", hdr, err)
	}

	if err := Exec(ExecConfig{GridPath: filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing grid file should error")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"rounds": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Exec(ExecConfig{GridPath: badPath}); err == nil {
		t.Error("malformed grid should error")
	}
}

// TestSweepConservation holds the request-conservation invariant over a
// real run: every minted arrival is completed, aborted, dropped, or
// still queued at the horizon.
func TestSweepConservation(t *testing.T) {
	g := testGrid(t)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ci, reps := range res.Stats {
		for ri := range reps {
			st := &reps[ri]
			if st.Arrivals == 0 {
				t.Fatalf("cell %d rep %d minted no arrivals", ci, ri)
			}
			if got := st.Completions + st.Aborted + st.Dropped + st.QueueDepth; got != st.Arrivals {
				t.Errorf("cell %d rep %d: completions %d + aborted %d + dropped %d + queue %d = %d, want arrivals %d",
					ci, ri, st.Completions, st.Aborted, st.Dropped, st.QueueDepth, got, st.Arrivals)
			}
		}
	}
}
