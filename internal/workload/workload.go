// Package workload defines the interface between PowerDial and the
// applications it controls. An application exposes:
//
//   - its dynamic-knob specs (the configuration parameters and ranges the
//     user identified, Sec. 2 "Parameter Identification");
//   - input streams (training and production sets, Sec. 4/Table 1), each a
//     sequence of main-control-loop iterations — one heartbeat per
//     iteration;
//   - a way to apply a knob setting (deriving the control variables, the
//     same derivation the influence tracer observes);
//   - an application-specific QoS loss between two outputs (Sec. 2.2's
//     output abstraction + metric).
//
// Iteration costs are reported in abstract work units measured from the
// real computation (operation counts). On the simulated platform
// (internal/platform) a machine converts work units to virtual time as a
// function of its DVFS frequency; on a fixed-frequency machine the ratio
// of total costs is exactly the paper's execution-time speedup.
package workload

import (
	"repro/internal/influence"
	"repro/internal/knobs"
)

// InputSet selects the training or production inputs (the paper randomly
// partitions representative inputs into these two sets).
type InputSet int

const (
	// Training inputs drive dynamic knob calibration.
	Training InputSet = iota
	// Production inputs evaluate generalization to unseen inputs.
	Production
)

// String names the input set.
func (s InputSet) String() string {
	if s == Training {
		return "training"
	}
	return "production"
}

// Output is an application-specific accumulated output for one stream
// (e.g. encoded video statistics, a vector of swaption prices).
type Output interface{}

// Run is a stateful pass over one stream. Each Step performs one iteration
// of the application's main control loop — the loop where PowerDial
// inserts the heartbeat — under the application's *current* control
// variables, and returns the work units the iteration consumed.
type Run interface {
	// Step executes the next iteration. ok is false when the stream is
	// exhausted (and cost is then 0).
	Step() (cost float64, ok bool)
	// Output returns the accumulated output (valid once Step returned
	// ok=false; intermediate calls return the output so far).
	Output() Output
}

// Rewinder is an optional Run extension: a run that can rewind to the
// start of its stream and be served again, exactly as a fresh NewRun
// would. Hot paths (the fleet engines) pool rewindable runs so that
// steady-state request service allocates nothing; a Rewind that cannot
// restore the fresh-run state must return false, and the caller then
// falls back to NewRun.
type Rewinder interface {
	Rewind() bool
}

// Stream is one input for the application: a video, a portfolio of
// swaptions, a batch of queries.
type Stream interface {
	// Name identifies the input (for reports).
	Name() string
	// Len is the number of iterations in the stream.
	Len() int
	// NewRun starts a fresh pass over the stream.
	NewRun() Run
}

// App is a PowerDial-controllable application.
type App interface {
	// Name is the benchmark name ("swaptions", "x264", ...).
	Name() string
	// Specs returns the dynamic-knob specifications.
	Specs() []knobs.Spec
	// Apply derives the control variables for setting s and installs
	// them. It is safe to call between Steps of an active Run (that is
	// the whole point of dynamic knobs).
	Apply(s knobs.Setting)
	// Streams returns the input streams of the given set.
	Streams(set InputSet) []Stream
	// Loss returns the QoS loss (0 = optimal, larger = worse; a
	// fraction, not a percentage) of observed relative to baseline
	// output for the same stream.
	Loss(baseline, observed Output) float64
}

// Traceable is implemented by applications whose initialization can run
// under the influence tracer for dynamic knob identification (Sec. 2.1).
// TraceInit must perform the same control-variable derivation as Apply,
// through tagged operations, store each control variable with
// Tracer.Store/StoreVec, emit the first heartbeat, and replay the main
// loop's reads.
type Traceable interface {
	App
	TraceInit(tr *influence.Tracer, s knobs.Setting)
}

// Bindable is implemented by applications that expose their control
// variables to the dynamic-knob registry: RegisterVars installs one
// writer callback per control variable (named exactly as in TraceInit)
// that pokes the recorded value into the application's live state.
type Bindable interface {
	App
	RegisterVars(reg *knobs.Registry) error
}

// Space returns the validated setting space of an application.
func Space(a App) (knobs.Space, error) {
	return knobs.NewSpace(a.Specs())
}

// RunToEnd drives a Run to completion with the application's current
// control variables, returning the total cost and iteration count.
func RunToEnd(r Run) (totalCost float64, iterations int) {
	for {
		c, ok := r.Step()
		if !ok {
			return totalCost, iterations
		}
		totalCost += c
		iterations++
	}
}

// MeasureStream applies setting s and runs the whole stream, returning
// total cost and the output. It is the calibration primitive.
func MeasureStream(a App, st Stream, s knobs.Setting) (cost float64, out Output) {
	a.Apply(s)
	run := st.NewRun()
	cost, _ = RunToEnd(run)
	return cost, run.Output()
}
