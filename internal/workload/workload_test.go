package workload

import (
	"testing"

	"repro/internal/knobs"
)

// echoApp is a minimal App used to exercise the driver helpers.
type echoApp struct {
	cur   int64
	steps int
}

func (e *echoApp) Name() string { return "echo" }
func (e *echoApp) Specs() []knobs.Spec {
	return []knobs.Spec{{Name: "k", Values: []int64{1, 2, 4}, Default: 4}}
}
func (e *echoApp) Apply(s knobs.Setting)    { e.cur = s[0] }
func (e *echoApp) Loss(b, o Output) float64 { return 0 }
func (e *echoApp) Streams(set InputSet) []Stream {
	return []Stream{&echoStream{app: e, n: e.steps}}
}

type echoStream struct {
	app *echoApp
	n   int
}

func (s *echoStream) Name() string { return "s" }
func (s *echoStream) Len() int     { return s.n }
func (s *echoStream) NewRun() Run  { return &echoRun{s: s} }

type echoRun struct {
	s    *echoStream
	done int
	sum  float64
}

func (r *echoRun) Step() (float64, bool) {
	if r.done >= r.s.n {
		return 0, false
	}
	r.done++
	c := float64(10 / r.s.app.cur)
	r.sum += c
	return c, true
}
func (r *echoRun) Output() Output { return r.sum }

func TestInputSetString(t *testing.T) {
	if Training.String() != "training" || Production.String() != "production" {
		t.Error("InputSet names wrong")
	}
}

func TestSpaceValidatesSpecs(t *testing.T) {
	app := &echoApp{steps: 3}
	sp, err := Space(app)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 3 {
		t.Fatalf("space size = %d", sp.Size())
	}
}

func TestRunToEnd(t *testing.T) {
	app := &echoApp{steps: 5}
	app.Apply(knobs.Setting{2})
	run := app.Streams(Training)[0].NewRun()
	cost, iters := RunToEnd(run)
	if iters != 5 {
		t.Fatalf("iterations = %d, want 5", iters)
	}
	if cost != 25 { // 5 steps x (10/2)
		t.Fatalf("cost = %v, want 25", cost)
	}
}

func TestMeasureStreamAppliesSetting(t *testing.T) {
	app := &echoApp{steps: 4}
	st := app.Streams(Training)[0]
	cost, out := MeasureStream(app, st, knobs.Setting{1})
	if app.cur != 1 {
		t.Fatal("setting not applied")
	}
	if cost != 40 || out.(float64) != 40 {
		t.Fatalf("cost=%v out=%v, want 40", cost, out)
	}
	cost2, _ := MeasureStream(app, st, knobs.Setting{4})
	if cost2 >= cost {
		t.Fatalf("faster setting should cost less: %v vs %v", cost2, cost)
	}
}
