// Package powerdial is the public API of this PowerDial reproduction
// ("Dynamic Knobs for Responsive Power-Aware Computing", Hoffmann et al.,
// ASPLOS 2011).
//
// PowerDial transforms static configuration parameters into dynamic knobs
// — control variables in the address space of a running application that
// a feedback control system rewrites at runtime to trade quality of
// service for performance and power. The offline pipeline identifies the
// control variables by dynamic influence tracing, records their values
// for every knob setting, and calibrates the speedup/QoS trade-off space
// on training inputs; the online runtime monitors Application Heartbeats
// and actuates the knobs to hold a target heart rate through power caps
// and load spikes.
//
// Quick start:
//
//	app := powerdial.NewSwaptionsBenchmark(powerdial.ScaleSmall)
//	sys, err := powerdial.Prepare(app, powerdial.PrepareOptions{})
//	...
//	mach, err := powerdial.NewMachine(powerdial.MachineConfig{Clock: powerdial.NewVirtualClock()})
//	rt, err := powerdial.NewRuntime(powerdial.RuntimeConfig{System: sys, Machine: mach})
//	summary, err := rt.RunStream(app.Streams(powerdial.Production)[0])
//
// The subpackages under internal/ implement the substrates: Application
// Heartbeats, influence tracing, the knob registry, the controller and
// actuator, the simulated DVFS platform, the cluster model, and the four
// benchmark applications from the paper's evaluation (swaptions, x264,
// bodytrack, swish++).
package powerdial

import (
	"io"
	"time"

	"repro/internal/calibrate"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/heartbeats"
	"repro/internal/influence"
	"repro/internal/knobs"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Application interfaces (see internal/workload).
type (
	// App is a PowerDial-controllable application.
	App = workload.App
	// Traceable apps support dynamic knob identification.
	Traceable = workload.Traceable
	// Bindable apps expose control variables to the knob registry.
	Bindable = workload.Bindable
	// Stream is one application input (a video, a portfolio, a query
	// batch); each iteration is one heartbeat.
	Stream = workload.Stream
	// Run is a stateful pass over a Stream.
	Run = workload.Run
	// Rewinder is an optional Run extension: a run that can rewind to
	// its stream's start and be served again exactly as a fresh NewRun
	// would — the hook the fleet's zero-alloc session chain pools runs
	// through.
	Rewinder = workload.Rewinder
	// Output is an application-specific stream output.
	Output = workload.Output
	// InputSet selects training or production inputs.
	InputSet = workload.InputSet
)

// Input sets.
const (
	Training   = workload.Training
	Production = workload.Production
)

// Knob types (see internal/knobs).
type (
	// Setting is one combination of knob values.
	Setting = knobs.Setting
	// Spec declares a knob: name, values, default.
	Spec = knobs.Spec
	// Space is the cartesian setting space of an app's specs.
	Space = knobs.Space
	// Registry holds control variables and recorded per-setting values.
	Registry = knobs.Registry
)

// Calibration types (see internal/calibrate).
type (
	// Profile is a calibrated trade-off space.
	Profile = calibrate.Profile
	// SettingResult is one calibrated (speedup, QoS loss) point.
	SettingResult = calibrate.SettingResult
	// CalibrateOptions configures a calibration sweep.
	CalibrateOptions = calibrate.Options
	// Correlation is the Table 2 training-vs-production result.
	Correlation = calibrate.Correlation
)

// Core pipeline types (see internal/core).
type (
	// System is a prepared PowerDial deployment.
	System = core.System
	// PrepareOptions configures Prepare.
	PrepareOptions = core.PrepareOptions
	// Runtime drives an application under PowerDial control.
	Runtime = core.Runtime
	// RuntimeConfig assembles a Runtime.
	RuntimeConfig = core.RuntimeConfig
	// RunSummary reports one controlled stream execution.
	RunSummary = core.RunSummary
	// TracePoint is one per-beat runtime observation.
	TracePoint = core.TracePoint
)

// Control types (see internal/control).
type (
	// Policy selects the actuation solution.
	Policy = control.Policy
	// Plan is an actuator schedule for one quantum.
	Plan = control.Plan
)

// Actuation policies (Sec. 2.3.3's two solutions).
const (
	// MinQoS runs at the lowest sufficient speedup (for platforms with
	// high idle power).
	MinQoS = control.MinQoS
	// RaceToIdle runs at maximum speedup then idles (for platforms with
	// low idle power).
	RaceToIdle = control.RaceToIdle
)

// Platform types (see internal/platform).
type (
	// Machine is a simulated DVFS server.
	Machine = platform.Machine
	// MachineConfig configures a Machine.
	MachineConfig = platform.Config
	// PowerModel maps frequency and utilization to watts.
	PowerModel = platform.PowerModel
	// Target is a heart-rate goal range.
	Target = heartbeats.Target
	// Monitor is an Application Heartbeats monitor.
	Monitor = heartbeats.Monitor
	// VirtualClock is a deterministic manual clock.
	VirtualClock = clock.Virtual
)

// Cluster types (see internal/cluster).
type (
	// ClusterConfig describes a provisioned multi-machine system.
	ClusterConfig = cluster.Config
	// Cluster is a provisioned system under evaluation.
	Cluster = cluster.System
	// ClusterPoint is an evaluated load point.
	ClusterPoint = cluster.Point
	// ClusterOracle is the closed-form model the executed fleet is
	// validated against.
	ClusterOracle = cluster.Oracle
	// ClusterPrediction is one oracle steady-state prediction.
	ClusterPrediction = cluster.Prediction
	// MD1 is the closed-form M/D/1 queueing station of the oracle's
	// event-time surface, including the exact waiting-time distribution
	// (WaitCDF) and its quantiles.
	MD1 = cluster.MD1
	// MG1 is the general-service station: the full Pollaczek–Khinchine
	// mean-value forms from the first two service moments (M/D/1 is the
	// zero-variance special case, DeterministicMG1).
	MG1 = cluster.MG1
	// ServiceClass is one deterministic work-item class of a mixed
	// stream, composed into an MG1 station by MixMG1.
	ServiceClass = cluster.ServiceClass
	// QueueingPrediction is the oracle's event-time steady state for an
	// open-loop offered load.
	QueueingPrediction = cluster.QueueingPrediction
	// ClusterGroupStation describes one workload group's offered load
	// for the composed mix oracle (PredictClusterMix).
	ClusterGroupStation = cluster.GroupStation
	// ClusterMixPrediction is the composed per-group M/G/1 steady state
	// of a heterogeneous scenario.
	ClusterMixPrediction = cluster.MixPrediction
	// ClusterWaitDist is the numeric M/G/1 waiting- and sojourn-time
	// distribution for a mixed deterministic stream — the full-CDF
	// companion to the mean-value MG1 forms, built by NewClusterWaitDist.
	ClusterWaitDist = cluster.WaitDist
)

// Fleet types (see internal/fleet): the supervisor that runs many
// Runtime instances across simulated machines under a shared power
// budget, on a deterministic discrete-event timeline (or the legacy
// bulk-synchronous quantum loop).
type (
	// FleetScenario composes a fleet from named, heterogeneous workload
	// groups sharing machines and one power budget — the primary
	// construction surface (NewFleetScenario).
	FleetScenario = fleet.Scenario
	// FleetWorkloadGroup is one named class of application instances in
	// a scenario: its own app factory, profile, target, arrival stream,
	// SLO, and contention pressure.
	FleetWorkloadGroup = fleet.WorkloadGroup
	// FleetInterference models machine co-residency for a scenario.
	FleetInterference = fleet.Interference
	// FleetUniformShare is the oracle-validated reference interference
	// model: pure time-multiplexing, blind to group identity.
	FleetUniformShare = fleet.UniformShare
	// FleetPressureShare is the contention-aware interference model:
	// cross-group pressure degrades effective frequency.
	FleetPressureShare = fleet.PressureShare
	// FleetConfig assembles a single-group fleet. It is the deprecated
	// one-group compatibility shim over FleetScenario — kept working
	// (NewFleet wraps it into a scenario with one group, "default",
	// under uniform-share interference), but new code should compose a
	// FleetScenario of named workload groups instead.
	FleetConfig = fleet.Config
	// Fleet is the fleet supervisor.
	Fleet = fleet.Supervisor
	// FleetTimeline selects the fleet's execution engine.
	FleetTimeline = fleet.Timeline
	// FleetInstance is one controlled application instance.
	FleetInstance = fleet.Instance
	// FleetHost is one simulated machine of a fleet.
	FleetHost = fleet.Host
	// FleetRoundStats reports one control quantum.
	FleetRoundStats = fleet.RoundStats
	// FleetGroupRoundStats is one workload group's slice of a quantum.
	FleetGroupRoundStats = fleet.GroupRoundStats
	// FleetInstanceLatency is one instance's latency percentiles.
	FleetInstanceLatency = fleet.InstanceLatency
	// FleetReport summarizes a fleet run.
	FleetReport = fleet.Report
	// FleetGroupReport is one workload group's run summary.
	FleetGroupReport = fleet.GroupReport
	// LoadGen is an arrival process feeding a fleet: open-loop Poisson
	// shapes (constant, ramp, spike, recorded trace) or closed-loop
	// saturation.
	LoadGen = fleet.LoadGen
	// FleetRequest is one unit of offered load.
	FleetRequest = fleet.Request
	// FleetTraceEvent is one entry of the fleet's event-time trace.
	FleetTraceEvent = fleet.TraceEvent
	// SyntheticOptions sizes the analytically exact synthetic workload.
	SyntheticOptions = fleet.SyntheticOptions
	// FleetSLO is the latency objective a fleet autoscaler provisions
	// for.
	FleetSLO = fleet.SLO
	// FleetAutoscaler decides the fleet's accepting-instance count.
	FleetAutoscaler = fleet.Autoscaler
	// FleetScaleObservation is one closed quantum as an autoscaler sees
	// it.
	FleetScaleObservation = fleet.ScaleObservation
	// FleetHysteresisConfig tunes the default autoscaling policy.
	FleetHysteresisConfig = fleet.HysteresisConfig
	// FleetHysteresisScaler is the default hysteresis autoscaler.
	FleetHysteresisScaler = fleet.HysteresisScaler
	// FleetPlannerConfig feeds the M/D/1 provisioning estimate forward
	// into the hysteresis autoscaler (model-informed damping).
	FleetPlannerConfig = fleet.PlannerConfig
	// FleetReplayConfig drives one Fig. 8 consolidation replay.
	FleetReplayConfig = fleet.ReplayConfig
	// FleetReplayPoint is one reporting quantum of a replay (one CSV
	// row).
	FleetReplayPoint = fleet.ReplayPoint
	// FleetGroupReplayPoint is one workload group's slice of a replay
	// quantum.
	FleetGroupReplayPoint = fleet.GroupReplayPoint
	// FleetReplayResult is a finished replay.
	FleetReplayResult = fleet.ReplayResult
	// FleetFaultKind labels one class of injected fault.
	FleetFaultKind = fleet.FaultKind
	// FleetFaultEvent is one scheduled fault on the event timeline.
	FleetFaultEvent = fleet.FaultEvent
	// FleetFaultModel is the pluggable fault source for chaos runs.
	FleetFaultModel = fleet.FaultModel
	// FleetFaultOptions wires a fault model into a fleet.
	FleetFaultOptions = fleet.FaultOptions
	// FleetFaultSchedule is a fixed, fully explicit fault model.
	FleetFaultSchedule = fleet.FaultSchedule
	// FleetFaultConfig parameterizes the seeded stochastic fault model.
	FleetFaultConfig = fleet.FaultConfig
	// FleetSeededFaults is the seeded stochastic fault model.
	FleetSeededFaults = fleet.SeededFaults
	// FleetFaultRecord is one landed fault's resilience accounting.
	FleetFaultRecord = fleet.FaultRecord
	// FleetResilience summarizes a faulted run's recovery behavior.
	FleetResilience = fleet.Resilience
	// FleetReplayFaultPoint is one replay quantum's fault counters.
	FleetReplayFaultPoint = fleet.ReplayFaultPoint
)

// Fleet timeline selectors.
const (
	// FleetTimelineEvent is the discrete-event scheduler (default).
	FleetTimelineEvent = fleet.TimelineEvent
	// FleetTimelineQuantum is the legacy bulk-synchronous loop.
	FleetTimelineQuantum = fleet.TimelineQuantum
)

// Fault classes injectable by a fleet fault model.
const (
	// FleetFaultCrash takes a host (or a whole rack) offline.
	FleetFaultCrash = fleet.FaultCrash
	// FleetFaultThrottle clamps a host's DVFS below the arbiter grant.
	FleetFaultThrottle = fleet.FaultThrottle
	// FleetFaultStraggler slows one instance's service share.
	FleetFaultStraggler = fleet.FaultStraggler
	// FleetFaultSag scales the global power budget mid-window.
	FleetFaultSag = fleet.FaultSag
)

// Serving types (see internal/serve): the wall-clock serving mode that
// runs the fleet as a live power-capped server — a real-time gateway,
// per-group admission control, a pacer tying the deterministic event
// engine to the wall clock, and a digital twin replaying what-if
// scenarios faster than real time to feed the autoscaler forward.
type (
	// ServeConfig assembles a serving loop.
	ServeConfig = serve.Config
	// Server owns the serving loop: one RunRound per control quantum,
	// paced against the configured clock.
	Server = serve.Server
	// ServeGateway is the concurrency-safe request intake the serving
	// loop drains once per round.
	ServeGateway = serve.Gateway
	// ServeAdmission is the per-group accept-or-shed policy: token
	// bucket, backlog watermark, and p95-breach shedding.
	ServeAdmission = serve.Admission
	// ServeAdmissionConfig tunes one group's admission policy.
	ServeAdmissionConfig = serve.AdmissionConfig
	// ServeGroupSignals is the last closed round's signals admission
	// decides on.
	ServeGroupSignals = serve.GroupSignals
	// ServePacer maps wall instants to virtual ones and paces the
	// engine one quantum behind the wall clock.
	ServePacer = serve.Pacer
	// ServeTwin is the digital twin: snapshot the live fleet, replay
	// what-if provisioning candidates faster than real time, recommend.
	ServeTwin = serve.Twin
	// ServeTwinConfig parameterizes the twin's what-if search.
	ServeTwinConfig = serve.TwinConfig
	// ServeTwinScaler clamps a measurement-driven autoscaler to ±1 of
	// the twin's recommendation (feed-forward damping).
	ServeTwinScaler = serve.TwinScaler
	// ServeStats is the serving loop's counter snapshot (the /stats
	// JSON).
	ServeStats = serve.Stats
	// FleetSnapshot captures a live fleet's serving state for the twin.
	FleetSnapshot = fleet.FleetSnapshot
	// FleetGroupSnapshot is one workload group's slice of a snapshot.
	FleetGroupSnapshot = fleet.GroupSnapshot
	// Clock is a read-only time source (clock.Virtual, RealClock).
	Clock = clock.Clock
	// ClockWaiter is a Clock that can block until a later instant — the
	// injection seam the serving loop paces on.
	ClockWaiter = clock.Waiter
	// RealClock is the system wall clock, the one sanctioned
	// nondeterminism boundary (cmd/fleet -serve binds it).
	RealClock = clock.Real
)

// Admission shed reasons, as recorded per refused request.
const (
	// ServeShedRate is a token-bucket refusal.
	ServeShedRate = serve.ShedRate
	// ServeShedQueue is a backlog-watermark refusal.
	ServeShedQueue = serve.ShedQueue
	// ServeShedP95 is a latency-objective-breach refusal.
	ServeShedP95 = serve.ShedP95
)

// Influence-tracing types (see internal/influence).
type (
	// Tracer observes one instrumented initialization.
	Tracer = influence.Tracer
	// Report is a control-variable report.
	Report = influence.Report
)

// Prepare runs the offline PowerDial pipeline (identification +
// calibration) on an application.
func Prepare(app App, opts PrepareOptions) (*System, error) { return core.Prepare(app, opts) }

// Identify runs dynamic knob identification only.
func Identify(app Traceable, settings []Setting) (*Registry, Report, error) {
	return core.Identify(app, settings)
}

// Calibrate sweeps an application's setting space (Sec. 2.2).
func Calibrate(app App, opts CalibrateOptions) (*Profile, error) { return calibrate.Run(app, opts) }

// Correlate computes Table 2's training-vs-production correlation.
func Correlate(train, prod *Profile) (Correlation, error) { return calibrate.Correlate(train, prod) }

// LoadProfile reads a calibration profile saved with Profile.Save.
func LoadProfile(path string) (*Profile, error) { return calibrate.Load(path) }

// NewRuntime builds the online control runtime.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return core.NewRuntime(cfg) }

// NewMachine builds a simulated server.
func NewMachine(cfg MachineConfig) (*Machine, error) { return platform.NewMachine(cfg) }

// NewVirtualClock returns a deterministic clock starting at the Unix
// epoch.
func NewVirtualClock() *VirtualClock { return clock.NewVirtual(time.Unix(0, 0)) }

// NewCluster builds a provisioned multi-machine system.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewClusterOracle builds the analytic oracle for a fleet-shaped system.
func NewClusterOracle(machines, coresPerMachine int, profile *Profile, power PowerModel, freqGHz float64) (*ClusterOracle, error) {
	return cluster.NewOracle(machines, coresPerMachine, profile, power, freqGHz)
}

// NewFleet builds a fleet supervisor (event-driven by default) from the
// deprecated single-group FleetConfig shim; new code should use
// NewFleetScenario.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// NewFleetScenario builds a fleet supervisor from a scenario of named
// heterogeneous workload groups — each with its own app factory,
// profile, heart-rate target, arrival stream, SLO, and contention
// pressure — sharing machines and one power budget. Drive it with
// Fleet.Run(nil, rounds): every group's own load generator feeds its
// instances.
func NewFleetScenario(sc FleetScenario) (*Fleet, error) { return fleet.NewScenario(sc) }

// WriteFleetTraceCSV writes a fleet event-time trace as CSV, in the
// canonical SortFleetTrace order.
func WriteFleetTraceCSV(w io.Writer, events []FleetTraceEvent) error {
	return fleet.WriteTraceCSV(w, events)
}

// SortFleetTrace sorts trace events into the canonical deterministic
// (instant, kind, host, ...) order, making traces diff cleanly across
// engines and Workers values.
func SortFleetTrace(events []FleetTraceEvent) { fleet.SortTrace(events) }

// NewSyntheticApp builds the analytically exact synthetic workload used
// by fleet tests and demos.
func NewSyntheticApp(opts SyntheticOptions) App { return fleet.NewSynthetic(opts) }

// NewHysteresisScaler builds the default fleet autoscaling policy: a
// two-sided hysteresis controller over queue depth and smoothed p95
// latency against an SLO.
func NewHysteresisScaler(cfg FleetHysteresisConfig) (*FleetHysteresisScaler, error) {
	return fleet.NewHysteresisScaler(cfg)
}

// ReplayFleet feeds a spiky arrival trace through the autoscaled fleet
// on the event timeline — the executed form of the paper's Fig. 8
// consolidation experiment.
func ReplayFleet(sup *Fleet, cfg FleetReplayConfig) (*FleetReplayResult, error) {
	return fleet.Replay(sup, cfg)
}

// WriteFleetReplayCSV writes replay points as the documented
// per-quantum consolidation CSV (docs/TRACE_FORMAT.md).
func WriteFleetReplayCSV(w io.Writer, points []FleetReplayPoint) error {
	return fleet.WriteReplayCSV(w, points)
}

// Fig8Rates synthesizes the paper's Sec. 5.5 spiky consolidation trace
// as an arrival-rate series.
func Fig8Rates(rounds int, peak float64, seed int64) []float64 {
	return fleet.Fig8Rates(rounds, peak, seed)
}

// NewFleetSeededFaults builds the seeded stochastic fault model: per
// round it draws Poisson counts per fault class and exponential
// durations, all from one seed, so chaos runs replay exactly.
func NewFleetSeededFaults(cfg FleetFaultConfig) *FleetSeededFaults {
	return fleet.NewSeededFaults(cfg)
}

// WriteFleetResilienceCSV writes a faulted run's per-fault recovery
// accounting as CSV (docs/TRACE_FORMAT.md).
func WriteFleetResilienceCSV(w io.Writer, res *FleetResilience) error {
	return fleet.WriteResilienceCSV(w, res)
}

// NewServer assembles and validates a serving loop over a fresh fleet.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// NewServeGateway builds the request intake: clk stamps receive
// instants, buf bounds the per-round backlog (default 1024).
func NewServeGateway(clk Clock, buf int) *ServeGateway { return serve.NewGateway(clk, buf) }

// NewServeAdmission builds the per-group admission policy, one config
// per workload group in scenario order.
func NewServeAdmission(cfgs []ServeAdmissionConfig) (*ServeAdmission, error) {
	return serve.NewAdmission(cfgs)
}

// NewServePacer anchors a pacer at clk's current instant: round r's
// wall window is [anchor+r·quantum, anchor+(r+1)·quantum).
func NewServePacer(clk ClockWaiter, quantum time.Duration) *ServePacer {
	return serve.NewPacer(clk, quantum)
}

// NewServeTwin builds the digital twin for a scenario factory.
func NewServeTwin(cfg ServeTwinConfig) (*ServeTwin, error) { return serve.NewTwin(cfg) }

// PlanMD1Instances returns the smallest instance count that keeps every
// independent M/D/1 station's p-quantile sojourn within target seconds
// — the provisioning ground truth the fleet autoscaler is validated
// against.
func PlanMD1Instances(lambda, service, p, target float64, max int) (int, bool) {
	return cluster.PlanInstances(lambda, service, p, target, max)
}

// DeterministicMG1 expresses an M/D/1 station as the zero-variance
// M/G/1 special case.
func DeterministicMG1(lambda, service float64) MG1 {
	return cluster.DeterministicMG1(lambda, service)
}

// MixMG1 composes deterministic work-item classes into the M/G/1
// station serving their superposition — the full Pollaczek–Khinchine
// form over the mixture's first two service moments.
func MixMG1(classes ...ServiceClass) MG1 { return cluster.MixMG1(classes...) }

// NewClusterWaitDist builds the numeric M/G/1 waiting-time distribution
// for a mixed deterministic stream — WaitCDF/SojournCDF and their
// quantiles, where the mean-value MixMG1 forms are not enough (e.g.
// validating fluid-mode sojourn tails against the oracle).
func NewClusterWaitDist(classes ...ServiceClass) (*ClusterWaitDist, error) {
	return cluster.NewWaitDist(classes...)
}

// PredictClusterMix composes per-group M/G/1 stations into the
// cluster-level steady state a heterogeneous scenario is validated
// against (per-group sojourn, aggregate utilization and power).
func PredictClusterMix(oracle *ClusterOracle, groups []ClusterGroupStation) (ClusterMixPrediction, error) {
	return oracle.PredictMix(groups)
}

// NewConstantLoad produces Poisson arrivals at a fixed mean rate.
func NewConstantLoad(seed int64, perRound float64) *LoadGen {
	return fleet.NewConstantLoad(seed, perRound)
}

// NewRampLoad ramps the Poisson mean linearly over a horizon.
func NewRampLoad(seed int64, from, to float64, horizon int) *LoadGen {
	return fleet.NewRampLoad(seed, from, to, horizon)
}

// NewSpikeLoad bursts periodically, the Sec. 5.5 workload shape.
func NewSpikeLoad(seed int64, base, peak float64, period, width int) *LoadGen {
	return fleet.NewSpikeLoad(seed, base, peak, period, width)
}

// NewSaturatingLoad keeps every instance continuously busy.
func NewSaturatingLoad(depth int) *LoadGen {
	return fleet.NewSaturatingLoad(depth)
}

// NewTraceLoad replays a recorded per-round arrival-rate trace as
// Poisson arrivals.
func NewTraceLoad(seed int64, rates []float64) *LoadGen {
	return fleet.NewTraceLoad(seed, rates)
}

// ConsolidateCluster provisions the minimum machines serving the
// original peak under the profile's QoS cap (Eq. 21).
func ConsolidateCluster(orig ClusterConfig, profile *Profile) (*Cluster, error) {
	return cluster.Consolidate(orig, profile)
}

// DVFSFrequencies lists the platform's seven power states in GHz.
func DVFSFrequencies() []float64 {
	out := make([]float64, len(platform.Frequencies))
	copy(out, platform.Frequencies)
	return out
}

// DefaultPowerModel returns the power model fit to the paper's machine.
func DefaultPowerModel() PowerModel { return platform.DefaultPowerModel() }

// SpaceOf returns the validated setting space of an application.
func SpaceOf(app App) (Space, error) { return workload.Space(app) }
