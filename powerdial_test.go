package powerdial_test

import (
	"strings"
	"testing"

	powerdial "repro"
)

func TestBenchmarkNamesConstructAll(t *testing.T) {
	names := powerdial.BenchmarkNames()
	if len(names) != 4 {
		t.Fatalf("benchmarks = %v, want the paper's four", names)
	}
	for _, name := range names {
		app, err := powerdial.NewBenchmark(name, powerdial.ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if app.Name() != name {
			t.Errorf("app name %q != requested %q", app.Name(), name)
		}
		if len(app.Streams(powerdial.Training)) == 0 || len(app.Streams(powerdial.Production)) == 0 {
			t.Errorf("%s: missing input streams", name)
		}
		space, err := powerdial.SpaceOf(app)
		if err != nil {
			t.Fatal(err)
		}
		if !space.Contains(space.Default()) {
			t.Errorf("%s: default setting outside its own space", name)
		}
	}
}

func TestNewBenchmarkUnknown(t *testing.T) {
	if _, err := powerdial.NewBenchmark("nope", powerdial.ScaleSmall); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNewBenchmarkAliases(t *testing.T) {
	for _, alias := range []string{"swish++", "swishpp", "swish"} {
		app, err := powerdial.NewBenchmark(alias, powerdial.ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if app.Name() != "swish++" {
			t.Errorf("alias %q resolved to %q", alias, app.Name())
		}
	}
}

func TestSweepSettingsIncludeDefault(t *testing.T) {
	for _, name := range powerdial.BenchmarkNames() {
		app, err := powerdial.NewBenchmark(name, powerdial.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		settings, err := powerdial.SweepSettings(app, powerdial.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		if len(settings) < 2 {
			t.Fatalf("%s: sweep grid too small: %d", name, len(settings))
		}
		space, _ := powerdial.SpaceOf(app)
		def := space.Default()
		found := false
		for _, s := range settings {
			if s.Equal(def) {
				found = true
			}
			if !space.Contains(s) {
				t.Fatalf("%s: sweep setting %v outside space", name, s)
			}
		}
		if !found {
			t.Fatalf("%s: sweep grid omits the baseline", name)
		}
	}
}

func TestScaleString(t *testing.T) {
	if powerdial.ScaleSmall.String() != "small" ||
		powerdial.ScaleMedium.String() != "medium" ||
		powerdial.ScaleLarge.String() != "large" {
		t.Error("scale names wrong")
	}
}

func TestDVFSFrequenciesCopy(t *testing.T) {
	f := powerdial.DVFSFrequencies()
	if len(f) != 7 || f[0] != 2.4 || f[6] != 1.6 {
		t.Fatalf("frequencies = %v", f)
	}
	f[0] = 99
	if powerdial.DVFSFrequencies()[0] != 2.4 {
		t.Fatal("DVFSFrequencies leaks internal slice")
	}
}

func TestFacadePipelineEndToEnd(t *testing.T) {
	app := powerdial.NewSwaptionsBenchmark(powerdial.ScaleSmall)
	settings, err := powerdial.SweepSettings(app, powerdial.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := powerdial.Prepare(app, powerdial.PrepareOptions{Settings: settings})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sys.Report.String(), "nTrials") {
		t.Error("control-variable report missing nTrials")
	}
	prod, err := powerdial.Calibrate(app, powerdial.CalibrateOptions{
		Set:      powerdial.Production,
		Settings: settings,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := powerdial.Correlate(sys.Profile, prod)
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup < 0.99 {
		t.Errorf("speedup correlation = %v, want ~1 (Table 2)", c.Speedup)
	}
	mach, err := powerdial.NewMachine(powerdial.MachineConfig{Clock: powerdial.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := powerdial.NewRuntime(powerdial.RuntimeConfig{System: sys, Machine: mach})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunStream(app.Streams(powerdial.Production)[0]); err != nil {
		t.Fatal(err)
	}
}

func TestProfileSaveLoadViaFacade(t *testing.T) {
	app := powerdial.NewSwaptionsBenchmark(powerdial.ScaleSmall)
	settings, _ := powerdial.SweepSettings(app, powerdial.ScaleSmall)
	prof, err := powerdial.Calibrate(app, powerdial.CalibrateOptions{Settings: settings})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/p.json"
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := powerdial.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != prof.App || len(back.Results) != len(prof.Results) {
		t.Fatal("profile round trip mismatch")
	}
}

func TestClusterViaFacade(t *testing.T) {
	app := powerdial.NewSwaptionsBenchmark(powerdial.ScaleSmall)
	settings, _ := powerdial.SweepSettings(app, powerdial.ScaleSmall)
	prof, err := powerdial.Calibrate(app, powerdial.CalibrateOptions{Settings: settings, QoSCap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := powerdial.NewCluster(powerdial.ClusterConfig{Machines: 4})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := powerdial.ConsolidateCluster(powerdial.ClusterConfig{Machines: 4}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Machines() != 1 {
		t.Fatalf("consolidated machines = %d, want 1", cons.Machines())
	}
	po, _ := orig.Evaluate(32)
	pc, _ := cons.Evaluate(32)
	if pc.PowerWatts >= po.PowerWatts {
		t.Fatal("consolidation saved no power at peak")
	}
}
